"""Docs stay truthful: links resolve, commands exist, specs load.

The README and the scenario-spec reference are part of the product
surface; these tests keep them from drifting away from the code the
way stale docs do.  CI additionally runs ``tools/check_links.py`` and
an examples smoke pass.
"""

import pathlib
import re
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent
README = ROOT / "README.md"
SPEC_DOC = ROOT / "docs" / "scenario_spec.md"


def test_docs_exist():
    assert README.is_file()
    assert SPEC_DOC.is_file()


def test_relative_links_resolve():
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import check_links
    finally:
        sys.path.pop(0)
    for doc in (README, SPEC_DOC):
        assert check_links.broken_links(doc) == [], f"broken links in {doc}"


def test_every_readme_experiment_is_registered():
    from repro.eval.runner import experiment_names

    text = README.read_text(encoding="utf-8")
    mentioned = set(re.findall(r"repro run (\w+)", text))
    assert mentioned, "README must show at least one `repro run` command"
    unknown = mentioned - set(experiment_names())
    assert not unknown, f"README mentions unregistered experiments: {unknown}"
    # The experiment table stays complete: every registered experiment
    # appears in the README.
    missing = {name for name in experiment_names()
               if f"`{name}`" not in text}
    assert not missing, f"README experiment table is missing: {missing}"


def test_shipped_scenario_specs_load_and_validate():
    from repro.core.scenario import load_spec

    spec_dir = ROOT / "examples" / "specs"
    specs = sorted(spec_dir.glob("*.json"))
    assert specs, "examples/specs must ship at least one runnable spec"
    for path in specs:
        spec = load_spec(str(path))
        assert spec.edges


def test_scenario_spec_doc_covers_every_policy_field():
    import dataclasses

    from repro.core.scenario import EdgePolicySpec, MobilitySpec

    text = SPEC_DOC.read_text(encoding="utf-8")
    for cls in (EdgePolicySpec, MobilitySpec):
        for field in dataclasses.fields(cls):
            assert f"`{field.name}`" in text, \
                f"docs/scenario_spec.md is missing {cls.__name__}.{field.name}"


@pytest.mark.parametrize("spec_name", ["cafes_federated.json"])
def test_cli_scenario_runs_a_shipped_spec(spec_name):
    env_path = str(ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-m", "repro", "scenario",
         str(ROOT / "examples" / "specs" / spec_name), "--duration", "5"],
        capture_output=True, text=True, timeout=120,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin:/usr/local/bin"},
        cwd=str(ROOT))
    assert result.returncode == 0, result.stderr
    assert "hit ratio" in result.stdout
