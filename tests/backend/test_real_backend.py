"""Sim/real parity and robustness tests for the execution backend.

The unmarked tests run everything inline — real loopback sockets and
the real wire protocol inside the caller's event loop — so they stay
hermetic and run in tier-1.  Tests marked ``real_backend`` spawn one
OS process per edge plus a cloud stub (the deployment shape) and are
deselected by default; run them with ``pytest -m real_backend``.
"""

import asyncio

import pytest

from repro.backend.edge_server import EdgeService
from repro.backend.loadgen import build_workload
from repro.backend.protocol import call
from repro.backend.runner import run_real_scenario, run_simulated_trace
from repro.core.config import CoICConfig
from repro.core.metrics import (
    OUTCOME_ERROR,
    OUTCOME_HIT,
    OUTCOME_MISS,
    OUTCOME_SHED,
)
from repro.core.scenario import (
    ClientSpec,
    EdgePolicySpec,
    EdgeSpec,
    ScenarioSpec,
    WarmupSpec,
)
from repro.core.tasks import KIND_RECOGNITION


def fast_config(seed=0, n_classes=12, network="mobilenet_v2"):
    """Small class space + light cloud shim so misses cost ~0.16s."""
    config = CoICConfig(seed=seed)
    config.recognition.n_classes = n_classes
    config.recognition.resolution = "720p"
    config.recognition.network = network
    config.network.backhaul_mbps = 1000.0
    return config


def small_spec(policy=None, warm=(1, 2, 3), clients=(("m0", "m1"), ("m2",))):
    edges = tuple(
        EdgeSpec(name=f"edge{k}",
                 clients=tuple(ClientSpec(name=name) for name in row))
        for k, row in enumerate(clients))
    return ScenarioSpec(edges=edges, policy=policy,
                        warmup=WarmupSpec(classes=warm) if warm else None)


def triples(recorder):
    return [(r.user, r.outcome, r.correct) for r in recorder.records]


class TestSimRealParity:
    def test_sequential_inline_replay_matches_the_simulation(self):
        # The parity contract: same spec, same config, same trace,
        # sequential replay -> identical per-request outcomes and
        # correctness on both backends (and identical empty ledgers).
        spec = small_spec()
        config = fast_config()
        items = build_workload(spec, config, 4)

        sim = run_simulated_trace(spec, config, items)
        real = run_real_scenario(spec, config=config, mode="inline",
                                 sequential=True, items=items)

        assert triples(real.recorder) == triples(sim.recorder)
        assert (real.recorder.outcome_counts()
                == sim.recorder.outcome_counts())
        # Both hit and miss paths must actually be exercised for the
        # parity claim to mean anything.
        assert set(real.recorder.outcome_counts()) == {OUTCOME_HIT,
                                                       OUTCOME_MISS}
        assert real.recorder.ledger == sim.recorder.ledger == []
        assert real.mode == "inline"
        assert real.requests == len(items)
        assert real.requests_per_sec > 0.0

    def test_fully_warm_edge_serves_every_request_from_cache(self):
        spec = small_spec(warm=(0, 1, 2, 3), clients=(("m0",),))
        config = fast_config(n_classes=4)
        real = run_real_scenario(spec, config=config, mode="inline",
                                 requests_per_client=6)

        assert real.recorder.outcome_counts() == {OUTCOME_HIT: 6}
        assert real.recorder.outcome_counts(KIND_RECOGNITION) == {
            OUTCOME_HIT: 6}
        assert real.recorder.accuracy() == 1.0
        assert all(r.edge == "edge0" for r in real.recorder.records)
        (counters,) = real.edge_counters
        assert counters["hits"] == 6
        assert counters["misses"] == 0
        assert counters["cache_entries"] == 4

    def test_miss_resolution_populates_the_real_cache(self):
        # Two captures of the same class: the first misses to the
        # cloud stub, the second hits the entry that miss inserted.
        spec = small_spec(warm=(), clients=(("m0",),))
        config = fast_config(n_classes=1)
        real = run_real_scenario(spec, config=config, mode="inline",
                                 sequential=True, requests_per_client=2)

        assert [r.outcome for r in real.recorder.records] == [
            OUTCOME_MISS, OUTCOME_HIT]
        assert all(r.correct for r in real.recorder.records)
        assert real.edge_counters[0]["cache_entries"] == 1


class TestRobustness:
    def test_saturated_edge_sheds_with_a_drain_hint(self):
        # queue_limit=0 + concurrent clients on one edge: whoever
        # arrives while a cloud miss is in flight is refused.
        policy = EdgePolicySpec(admission="shed", queue_limit=0)
        spec = small_spec(policy=policy, warm=(),
                          clients=(("m0", "m1", "m2"),))
        config = fast_config(network="vgg16")  # slow misses on purpose
        real = run_real_scenario(spec, config=config, mode="inline",
                                 requests_per_client=2)

        counts = real.recorder.outcome_counts()
        assert real.requests == 6
        assert counts.get(OUTCOME_SHED, 0) > 0
        assert OUTCOME_ERROR not in counts
        shed = real.recorder.select(outcome=OUTCOME_SHED)
        assert all(r.detail["shed"] and r.detail["retry_after_s"] > 0
                   for r in shed)
        assert real.edge_counters[0]["shed"] >= len(shed)

    def test_shed_retries_resend_after_the_backoff(self):
        # With a generous retry budget the same contention resolves:
        # shed clients wait out the jittered retry_after_s hint and
        # re-send until a worker slot frees up.
        policy = EdgePolicySpec(admission="shed", queue_limit=0,
                                shed_retries=25)
        spec = small_spec(policy=policy, warm=(),
                          clients=(("m0", "m1", "m2"),))
        config = fast_config()
        real = run_real_scenario(spec, config=config, mode="inline",
                                 requests_per_client=2)

        counts = real.recorder.outcome_counts()
        assert real.requests == 6
        assert OUTCOME_ERROR not in counts
        assert counts.get(OUTCOME_SHED, 0) == 0
        served = real.recorder.select()
        # The contention happened (some request needed >=1 re-send) —
        # the retries are what turned the sheds into served requests.
        assert any(r.detail.get("retries", 0) > 0 for r in served)
        assert all(r.correct for r in served)

    def test_request_timeout_records_an_error_outcome(self):
        spec = small_spec(warm=(), clients=(("m0",),))
        config = fast_config(network="vgg16")
        config.request_timeout_s = 0.05  # well under the ~0.4s miss
        real = run_real_scenario(spec, config=config, mode="inline",
                                 sequential=True, requests_per_client=1)

        (record,) = real.recorder.records
        assert record.outcome == OUTCOME_ERROR
        assert "timeout" in record.detail["error"]
        assert record.correct is None

    def test_drain_refuses_new_work_then_shutdown_reports_counters(self):
        # The graceful half of the shutdown story, at protocol level:
        # a draining edge sheds incoming work, and the shutdown frame
        # answers with the final serving counters.
        payload = {
            "name": "edge0",
            "recognition": {"descriptor_dim": 16, "n_classes": 4,
                            "viewpoint_scale": 0.02, "noise_sigma": 0.005,
                            "seed": 0, "threshold": None,
                            "max_viewpoint_delta": 5.0},
            "cache": {"capacity_bytes": 10_000_000, "policy": "lru",
                      "vector_index": "linear", "metric": "l2",
                      "ttl_s": None, "vector_dtype": "float64"},
            "warm_classes": [], "admission": "none", "queue_limit": None,
            "cloud": None,  # cloudless: the edge itself is the oracle
        }

        async def _run():
            service = EdgeService(payload)
            await service.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port)
            request = {"op": "recognize", "capture_id": 1,
                       "object_class": 2, "viewpoint": 0.1}
            try:
                first = await call(reader, writer, request)
                await service.drain(timeout_s=1.0)
                second = await call(reader, writer,
                                    dict(request, capture_id=2))
                bye = await call(reader, writer, {"op": "shutdown"})
            finally:
                writer.close()
                await service.stop()
            return first, second, bye

        first, second, bye = asyncio.run(_run())
        assert first["outcome"] == OUTCOME_MISS and first["label"] == 2
        assert second["outcome"] == OUTCOME_SHED
        assert second["retry_after_s"] > 0
        assert bye["op"] == "bye"
        assert bye["served"] == 1 and bye["misses"] == 1
        assert bye["shed"] == 1 and bye["cache_entries"] == 1


class TestRunnerValidation:
    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            run_real_scenario(small_spec(), mode="threads")

    def test_kill_edge_requires_process_mode(self):
        with pytest.raises(ValueError, match="kill_edge"):
            run_real_scenario(small_spec(), mode="inline",
                              kill_edge="edge1")


@pytest.mark.real_backend
class TestProcessMode:
    """Deployment-shape tests: spawned OS processes, real SIGKILL."""

    def test_process_parity_smoke(self):
        spec = small_spec()
        config = fast_config()
        items = build_workload(spec, config, 3)

        sim = run_simulated_trace(spec, config, items)
        real = run_real_scenario(spec, config=config, mode="process",
                                 sequential=True, items=items)

        assert real.mode == "process"
        assert triples(real.recorder) == triples(sim.recorder)
        # Survivor shutdown collected both edges' final counters.
        assert [c["edge"] for c in real.edge_counters] == ["edge0",
                                                           "edge1"]
        assert sum(c["served"] for c in real.edge_counters) == len(items)

    def test_killed_edge_fails_over_and_the_run_completes(self):
        # SIGKILL edge1 while m2's first (slow vgg16) miss is in
        # flight: the client re-sends through the failover walk and
        # the whole trace still completes without an error outcome.
        spec = small_spec()
        config = fast_config(network="vgg16")
        real = run_real_scenario(spec, config=config, mode="process",
                                 requests_per_client=6,
                                 kill_edge="edge1", kill_after_s=0.2)

        assert real.requests == 18
        counts = real.recorder.outcome_counts()
        assert OUTCOME_ERROR not in counts
        assert set(counts) <= {OUTCOME_HIT, OUTCOME_MISS}
        # The killed edge never answered the shutdown frame...
        assert real.edge_counters[1] == {}
        # ...and every record that landed after the kill names the
        # survivor, including m2's failed-over requests.
        assert real.edge_counters[0]["served"] > 0
        m2_edges = [r.edge for r in real.recorder.records
                    if r.user == "m2"]
        assert m2_edges and m2_edges[-1] == "edge0"
