"""The workload trace is the sim/real contract: same draws, same ids."""

from repro.backend.loadgen import build_workload
from repro.core.config import CoICConfig
from repro.core.scenario import ClientSpec, EdgeSpec, ScenarioSpec
from repro.sim.rng import RngStreams


def two_edge_spec():
    return ScenarioSpec(edges=(
        EdgeSpec(name="edge0", clients=(ClientSpec(name="m0"),
                                        ClientSpec(name="m1"))),
        EdgeSpec(name="edge1", clients=(ClientSpec(name="m2"),))))


class TestBuildWorkload:
    def test_deterministic_and_seed_sensitive(self):
        spec = two_edge_spec()
        a = build_workload(spec, CoICConfig(seed=0), 5)
        b = build_workload(spec, CoICConfig(seed=0), 5)
        c = build_workload(spec, CoICConfig(seed=1), 5)
        assert a == b
        assert a != c

    def test_replicates_the_simulated_driver_draws(self):
        # Same stream name, same draw order as mobility_exp._request_loop:
        # class via integers(n_classes), then viewpoint uniform(-0.5, 0.5).
        config = CoICConfig(seed=3)
        items = build_workload(two_edge_spec(), config, 4)
        for client in ("m0", "m1", "m2"):
            rng = RngStreams(seed=3).stream(f"workload.mobile.{client}")
            mine = [i for i in items if i.client == client]
            for item in mine:
                assert item.object_class == int(
                    rng.integers(config.recognition.n_classes))
                assert item.viewpoint == float(rng.uniform(-0.5, 0.5))

    def test_capture_ids_globally_unique_from_one(self):
        items = build_workload(two_edge_spec(), CoICConfig(seed=0), 3)
        ids = [i.capture_id for i in items]
        assert ids == list(range(1, len(items) + 1))

    def test_items_carry_home_edge_and_seq(self):
        items = build_workload(two_edge_spec(), CoICConfig(seed=0), 2)
        assert {(i.client, i.edge) for i in items} == {
            ("m0", "edge0"), ("m1", "edge0"), ("m2", "edge1")}
        for client in ("m0", "m1", "m2"):
            assert [i.seq for i in items if i.client == client] == [0, 1]

    def test_frame_reconstruction_matches_sim_task(self):
        # item.frame() must rebuild the capture the simulated client
        # would have produced — identical descriptor geometry inputs.
        config = CoICConfig(seed=0)
        item = build_workload(two_edge_spec(), config, 1)[0]
        frame = item.frame(config)
        assert frame.object_class == item.object_class
        assert frame.viewpoint == item.viewpoint
        assert frame.capture_id == item.capture_id
        assert frame.user == item.client
        # Request wire size mirrors the simulated ic_request (64-byte
        # envelope + encoded frame).
        assert item.input_bytes == 64 + frame.size_bytes
