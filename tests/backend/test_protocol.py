"""Frame-level tests for the real backend's wire protocol."""

import asyncio
import struct

import pytest

from repro.backend.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_body,
    encode_frame,
    read_frame,
)


def read_from_bytes(data: bytes, eof: bool = True):
    """Drive read_frame over an in-memory StreamReader."""

    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        if eof:
            reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(_run())


class TestFraming:
    def test_round_trip(self):
        message = {"op": "recognize", "capture_id": 7,
                   "viewpoint": -0.25, "user": "m0"}
        assert read_from_bytes(encode_frame(message)) == message

    def test_prefix_is_4_byte_big_endian(self):
        frame = encode_frame({"op": "x"})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_two_frames_back_to_back(self):
        first, second = {"op": "a"}, {"op": "b", "n": 2}

        async def _run():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(first) + encode_frame(second))
            reader.feed_eof()
            return await read_frame(reader), await read_frame(reader)

        assert asyncio.run(_run()) == (first, second)

    def test_clean_eof_returns_none(self):
        assert read_from_bytes(b"") is None

    def test_eof_mid_prefix_raises(self):
        with pytest.raises(ProtocolError, match="mid-prefix"):
            read_from_bytes(b"\x00\x00")

    def test_eof_mid_frame_raises(self):
        frame = encode_frame({"op": "x"})
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_from_bytes(frame[:-2])

    def test_oversized_length_prefix_rejected_before_reading(self):
        huge = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            read_from_bytes(huge, eof=False)

    def test_oversized_outgoing_frame_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_non_object_body_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_body(b"[1, 2, 3]")
