"""Unit tests for repro.net.topology."""

import pytest

from repro.net import NoRouteError, Topology
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def topo(env):
    return Topology(env)


class TestConstruction:
    def test_add_host_idempotent(self, topo):
        a = topo.add_host("a")
        assert topo.add_host("a") is a

    def test_self_link_rejected(self, topo):
        with pytest.raises(ValueError):
            topo.add_link("a", "a", 1e6)

    def test_duplex_creates_both_directions(self, topo):
        fwd, bwd = topo.add_duplex("a", "b", 1e6)
        assert topo.link("a", "b") is fwd
        assert topo.link("b", "a") is bwd

    def test_links_enumeration(self, topo):
        topo.add_duplex("a", "b", 1e6)
        topo.add_link("b", "c", 1e6)
        assert len(topo.links()) == 3


class TestRouting:
    def test_direct_path(self, topo):
        topo.add_link("a", "b", 1e6)
        assert topo.shortest_path("a", "b") == ["a", "b"]

    def test_two_hop_path(self, topo):
        topo.add_link("m", "e", 1e6, propagation_s=0.001)
        topo.add_link("e", "c", 1e6, propagation_s=0.010)
        assert topo.shortest_path("m", "c") == ["m", "e", "c"]

    def test_prefers_lower_latency(self, topo):
        # Direct slow link vs two fast hops.
        topo.add_link("a", "b", 1e6, propagation_s=1.0)
        topo.add_link("a", "r", 1e9, propagation_s=0.001)
        topo.add_link("r", "b", 1e9, propagation_s=0.001)
        assert topo.shortest_path("a", "b") == ["a", "r", "b"]

    def test_same_host_path(self, topo):
        topo.add_host("a")
        assert topo.shortest_path("a", "a") == ["a"]

    def test_unknown_host_raises(self, topo):
        topo.add_host("a")
        with pytest.raises(KeyError):
            topo.shortest_path("a", "ghost")

    def test_no_route_raises(self, topo):
        topo.add_host("a")
        topo.add_host("isolated")
        with pytest.raises(NoRouteError):
            topo.shortest_path("a", "isolated")

    def test_down_links_excluded(self, topo):
        link = topo.add_link("a", "b", 1e6)
        topo.add_link("a", "r", 1e6, propagation_s=0.5)
        topo.add_link("r", "b", 1e6, propagation_s=0.5)
        link.set_up(False)
        assert topo.shortest_path("a", "b") == ["a", "r", "b"]

    def test_path_links_order(self, topo):
        topo.add_link("m", "e", 1e6)
        topo.add_link("e", "c", 1e6)
        links = topo.path_links("m", "c")
        assert [l.name for l in links] == ["m->e", "e->c"]

    def test_nominal_latency_sums_hops(self, topo):
        topo.add_link("m", "e", 8e6, propagation_s=0.001)
        topo.add_link("e", "c", 8e6, propagation_s=0.010)
        # 1 MB: 1 s per hop at 8 Mbps, plus props.
        expected = 1.0 + 0.001 + 1.0 + 0.010
        assert topo.nominal_latency("m", "c", 1_000_000) == pytest.approx(
            expected)

    def test_neighbors(self, topo):
        topo.add_duplex("a", "b", 1e6)
        link = topo.add_link("a", "c", 1e6)
        assert set(topo.neighbors("a")) == {"b", "c"}
        link.set_up(False)
        assert topo.neighbors("a") == ["b"]


class TestTerminalHosts:
    def test_terminal_host_never_transits(self, topo):
        # Dual-homed phone between two edges: the two fast hops through
        # it would beat the slow metro link, but a terminal host may
        # only start or end routes.
        topo.add_duplex("edgeA", "edgeB", 1e6, propagation_s=0.5)
        topo.add_duplex("phone", "edgeA", 1e9, propagation_s=0.001)
        topo.add_duplex("phone", "edgeB", 1e9, propagation_s=0.001)
        assert topo.shortest_path("edgeA", "edgeB") == [
            "edgeA", "phone", "edgeB"]
        topo.mark_terminal("phone")
        assert topo.shortest_path("edgeA", "edgeB") == ["edgeA", "edgeB"]
        # Routes from/to the phone itself still work.
        assert topo.shortest_path("phone", "edgeB") == ["phone", "edgeB"]
        assert topo.shortest_path("edgeA", "phone") == ["edgeA", "phone"]

    def test_unmark_restores_transit(self, topo):
        topo.add_duplex("edgeA", "edgeB", 1e6, propagation_s=0.5)
        topo.add_duplex("phone", "edgeA", 1e9, propagation_s=0.001)
        topo.add_duplex("phone", "edgeB", 1e9, propagation_s=0.001)
        topo.mark_terminal("phone")
        topo.mark_terminal("phone", False)
        assert not topo.is_terminal("phone")
        assert topo.shortest_path("edgeA", "edgeB") == [
            "edgeA", "phone", "edgeB"]

    def test_unknown_host_rejected(self, topo):
        with pytest.raises(KeyError):
            topo.mark_terminal("ghost")

    def test_terminal_link_change_keeps_other_routes_cached(self, topo):
        # A terminal host's access-link churn must only invalidate its
        # own routes; the interior route survives in the cache.
        topo.add_duplex("edgeA", "edgeB", 1e6, propagation_s=0.002)
        up, down = topo.add_duplex("phone", "edgeA", 1e8)
        topo.mark_terminal("phone")
        topo.shortest_path("edgeA", "edgeB")
        topo.shortest_path("phone", "edgeB")
        assert ("edgeA", "edgeB") in topo._route_cache
        up.set_up(False)
        assert ("edgeA", "edgeB") in topo._route_cache
        assert ("phone", "edgeB") not in topo._route_cache
        # A metro-link change still flushes everything.
        topo.link("edgeA", "edgeB").set_bandwidth(2e6)
        assert topo._route_cache == {}

    def test_routes_correct_after_terminal_handoff(self, topo):
        # Make-before-break: attach to edgeB, tear down edgeA, and the
        # phone's fresh routes go via the new attachment.
        topo.add_duplex("edgeA", "edgeB", 1e6, propagation_s=0.002)
        old = topo.add_duplex("phone", "edgeA", 1e8)
        topo.mark_terminal("phone")
        assert topo.shortest_path("phone", "edgeB") == [
            "phone", "edgeA", "edgeB"]
        topo.add_duplex("phone", "edgeB", 1e8)
        for link in old:
            link.set_up(False)
        assert topo.shortest_path("phone", "edgeB") == ["phone", "edgeB"]
        assert topo.shortest_path("edgeB", "phone") == ["edgeB", "phone"]
