"""Unit tests for repro.net.transport (RPC layer)."""

import pytest

from repro.net import Message, Rpc, RpcError, RpcTimeout, Topology
from repro.sim import Environment, RngStreams


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def net(env):
    """A mobile--edge--cloud chain with an rpc endpoint."""
    topo = Topology(env)
    topo.add_duplex("mobile", "edge", 100e6, propagation_s=0.001)
    topo.add_duplex("edge", "cloud", 20e6, propagation_s=0.010)
    return topo, Rpc(env, topo)


class TestSend:
    def test_delivers_to_inbox(self, env, net):
        topo, rpc = net
        msg = Message(size_bytes=1000, src="mobile", dst="cloud")
        received = []

        def server(env):
            m = yield rpc.serve(topo.hosts["cloud"])
            received.append((env.now, m))

        env.process(server(env))
        rpc.send(msg)
        env.run()
        assert received and received[0][1] is msg
        # Two-hop store-and-forward: tx at both links + both props.
        expected = 1000 * 8 / 100e6 + 0.001 + 1000 * 8 / 20e6 + 0.010
        assert received[0][0] == pytest.approx(expected)

    def test_missing_addressing_rejected(self, env, net):
        _, rpc = net
        with pytest.raises(ValueError):
            rpc.send(Message(size_bytes=10))

    def test_unroutable_destination_fails_event(self, env, net):
        topo, rpc = net
        topo.add_host("island")
        msg = Message(size_bytes=10, src="mobile", dst="island")
        failures = []

        def sender(env):
            try:
                yield rpc.send(msg)
            except RpcError as exc:
                failures.append(exc)

        env.run(until=env.process(sender(env)))
        assert failures


class TestCall:
    def test_round_trip(self, env, net):
        topo, rpc = net

        def server(env):
            request = yield rpc.serve(topo.hosts["cloud"])
            yield env.timeout(0.05)
            rpc.respond(request, size_bytes=500, payload="answer")

        def client(env):
            msg = Message(size_bytes=1000, src="mobile", dst="cloud")
            response = yield rpc.call(msg)
            return (response.payload, env.now)

        env.process(server(env))
        p = env.process(client(env))
        payload, elapsed = env.run(until=p)
        assert payload == "answer"
        assert elapsed > 0.05

    def test_response_does_not_hit_inbox(self, env, net):
        """Replies resolve the call; server loops never see them."""
        topo, rpc = net

        def server(env):
            request = yield rpc.serve(topo.hosts["cloud"])
            rpc.respond(request, size_bytes=10)

        def client(env):
            yield rpc.call(Message(size_bytes=10, src="mobile",
                                   dst="cloud"))

        env.process(server(env))
        env.run(until=env.process(client(env)))
        env.run()
        assert topo.hosts["mobile"].inbox.items == []

    def test_timeout_fires(self, env, net):
        topo, rpc = net
        # No server: the call can never be answered.
        errors = []

        def client(env):
            try:
                yield rpc.call(Message(size_bytes=10, src="mobile",
                                       dst="cloud"), timeout=0.5)
            except RpcTimeout as exc:
                errors.append((env.now, exc))

        env.run(until=env.process(client(env)))
        env.run()
        assert errors and errors[0][0] == pytest.approx(0.5, abs=0.01)

    def test_late_response_after_timeout_is_ignored(self, env, net):
        topo, rpc = net

        def slow_server(env):
            request = yield rpc.serve(topo.hosts["cloud"])
            yield env.timeout(5.0)
            # Responds long after the deadline; must not crash anything.
            yield rpc.respond(request, size_bytes=10, payload="too late")

        outcome = []

        def client(env):
            try:
                yield rpc.call(Message(size_bytes=10, src="mobile",
                                       dst="cloud"), timeout=0.2)
            except RpcTimeout:
                outcome.append("timed out")

        env.process(slow_server(env))
        env.run(until=env.process(client(env)))
        env.run()
        assert outcome == ["timed out"]

    def test_concurrent_calls_demultiplex(self, env, net):
        topo, rpc = net

        def server(env):
            while True:
                request = yield rpc.serve(topo.hosts["cloud"])
                # Answer out of order: second request returns first.
                delay = 0.2 if request.payload == "first" else 0.05
                env.process(respond_later(env, request, delay))

        def respond_later(env, request, delay):
            yield env.timeout(delay)
            rpc.respond(request, size_bytes=10,
                        payload=f"re:{request.payload}")

        results = {}

        def client(env, tag):
            msg = Message(size_bytes=10, src="mobile", dst="cloud",
                          payload=tag)
            response = yield rpc.call(msg)
            results[tag] = response.payload

        env.process(server(env))
        p1 = env.process(client(env, "first"))
        p2 = env.process(client(env, "second"))
        env.run(until=p1)
        env.run(until=p2) if not p2.processed else None
        assert results == {"first": "re:first", "second": "re:second"}


class TestRetries:
    def test_loss_is_retried_transparently(self, env):
        topo = Topology(env)
        rng = RngStreams(5)
        topo.add_link("a", "b", 1e9, loss_rate=0.3,
                      rng=rng.stream("loss"))
        rpc = Rpc(env, topo, max_retries=50)
        delivered = []

        def sender(env):
            for i in range(20):
                yield rpc.send(Message(size_bytes=100, src="a", dst="b"))
                delivered.append(i)

        env.run(until=env.process(sender(env)))
        assert len(delivered) == 20

    def test_retries_exhausted_raises(self, env):
        topo = Topology(env)
        rng = RngStreams(6)
        topo.add_link("a", "b", 1e9, loss_rate=0.99,
                      rng=rng.stream("loss"))
        rpc = Rpc(env, topo, max_retries=2)
        errors = []

        def sender(env):
            try:
                yield rpc.send(Message(size_bytes=100, src="a", dst="b"))
            except RpcError as exc:
                errors.append(exc)

        env.run(until=env.process(sender(env)))
        assert errors
