"""Unit tests for repro.net.message."""

import pytest

from repro.net import Message


class TestMessage:
    def test_size_bits(self):
        assert Message(size_bytes=100).size_bits == 800

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(size_bytes=-1)

    def test_ids_unique_and_increasing(self):
        a, b = Message(size_bytes=1), Message(size_bytes=1)
        assert b.msg_id > a.msg_id

    def test_reply_swaps_endpoints(self):
        req = Message(size_bytes=10, src="mobile", dst="edge")
        rep = req.reply(size_bytes=5)
        assert (rep.src, rep.dst) == ("edge", "mobile")
        assert rep.headers["in_reply_to"] == req.msg_id

    def test_reply_propagates_rpc_id(self):
        req = Message(size_bytes=10, src="a", dst="b")
        req.headers["rpc_id"] = 77
        assert req.reply(size_bytes=1).headers["rpc_id"] == 77

    def test_reply_without_rpc_id(self):
        req = Message(size_bytes=10, src="a", dst="b")
        assert "rpc_id" not in req.reply(size_bytes=1).headers
