"""Unit tests for repro.net.access (WiFi / LTE models)."""

import pytest

from repro.net import Topology, lte_epc_profile, wifi_80211ac_profile
from repro.net.access import (
    attach_lte,
    attach_wifi,
    wifi_mcs_rate_mbps,
    wifi_rate_at_distance_mbps,
)
from repro.sim import Environment


class TestWifiRates:
    def test_mcs_rates_monotone(self):
        rates = [wifi_mcs_rate_mbps(m) for m in range(10)]
        assert rates == sorted(rates)

    def test_spatial_streams_scale(self):
        assert wifi_mcs_rate_mbps(5, spatial_streams=2) == pytest.approx(
            2 * wifi_mcs_rate_mbps(5, spatial_streams=1))

    def test_mcs_range_validated(self):
        with pytest.raises(ValueError):
            wifi_mcs_rate_mbps(10)
        with pytest.raises(ValueError):
            wifi_mcs_rate_mbps(-1)

    def test_rate_decreases_with_distance(self):
        rates = [wifi_rate_at_distance_mbps(d)
                 for d in (1, 10, 20, 30, 40, 60)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_rate_positive_even_far(self):
        assert wifi_rate_at_distance_mbps(500) > 0

    def test_mac_efficiency_below_phy(self):
        # Application rate never exceeds the PHY rate.
        from repro.net.access import WIFI_80211AC_PHY_MBPS

        for mcs, phy in enumerate(WIFI_80211AC_PHY_MBPS):
            assert wifi_mcs_rate_mbps(mcs, 1) < phy


class TestProfiles:
    def test_wifi_profile_defaults_match_paper(self):
        profile = wifi_80211ac_profile()
        assert profile.rate_mbps == 400.0  # "up to 400 Mbps"
        assert profile.rate_bps == 400e6

    def test_lte_one_way_delay_includes_core(self):
        profile = lte_epc_profile(radio_delay_ms=10, core_delay_ms=15)
        assert profile.one_way_delay_s == pytest.approx(0.025)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            wifi_80211ac_profile(rate_mbps=0)
        with pytest.raises(ValueError):
            lte_epc_profile(downlink_mbps=-1)


class TestAttachment:
    def test_wifi_attach_symmetric(self):
        env = Environment()
        topo = Topology(env)
        up, down = attach_wifi(topo, "phone", "ap",
                               wifi_80211ac_profile(jitter_ms=0))
        assert up.bandwidth_bps == down.bandwidth_bps

    def test_lte_attach_asymmetric(self):
        env = Environment()
        topo = Topology(env)
        up, down = attach_lte(topo, "phone", "enb",
                              lte_epc_profile(jitter_ms=0))
        assert down.bandwidth_bps > up.bandwidth_bps
        assert up.propagation_s == down.propagation_s
