"""Unit tests for repro.net.link."""

import numpy as np
import pytest

from repro.net import Link, LinkDown, Message, TransferLost
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def deliver(env, link, message):
    """Run a single transfer to completion; returns (ok, delivery_time)."""
    outcome = {}

    def proc(env):
        start = env.now
        try:
            yield link.transfer(message)
            outcome["ok"] = True
        except (TransferLost, LinkDown) as exc:
            outcome["ok"] = False
            outcome["error"] = exc
        outcome["elapsed"] = env.now - start

    env.run(until=env.process(proc(env)))
    return outcome


class TestTiming:
    def test_serialization_plus_propagation(self, env):
        link = Link(env, "l", bandwidth_bps=8e6, propagation_s=0.05)
        msg = Message(size_bytes=100_000)  # 0.1 s at 8 Mbps
        out = deliver(env, link, msg)
        assert out["ok"]
        assert out["elapsed"] == pytest.approx(0.1 + 0.05)

    def test_zero_size_message_costs_propagation_only(self, env):
        link = Link(env, "l", bandwidth_bps=1e6, propagation_s=0.02)
        out = deliver(env, link, Message(size_bytes=0))
        assert out["elapsed"] == pytest.approx(0.02)

    def test_transfers_serialize_but_pipeline(self, env):
        """Second message waits for the transmitter, not the receiver."""
        link = Link(env, "l", bandwidth_bps=8e6, propagation_s=1.0)
        times = []

        def send(env, order):
            yield env.timeout(0)
            start = env.now
            yield link.transfer(Message(size_bytes=100_000))
            times.append((order, env.now - start))

        env.process(send(env, 1))
        env.process(send(env, 2))
        env.run()
        # msg1: 0.1 tx + 1.0 prop = 1.1; msg2 waits 0.1 then same.
        assert dict(times)[1] == pytest.approx(1.1)
        assert dict(times)[2] == pytest.approx(1.2)

    def test_rate_change_affects_later_transfers(self, env):
        link = Link(env, "l", bandwidth_bps=8e6)
        msg = Message(size_bytes=100_000)
        first = deliver(env, link, msg)
        link.set_bandwidth(16e6)
        second = deliver(env, link, Message(size_bytes=100_000))
        assert second["elapsed"] == pytest.approx(first["elapsed"] / 2)

    def test_one_way_delay_helper(self, env):
        link = Link(env, "l", bandwidth_bps=1e6, propagation_s=0.5)
        assert link.one_way_delay(125_000) == pytest.approx(1.0 + 0.5)


class TestValidation:
    def test_bad_bandwidth(self, env):
        with pytest.raises(ValueError):
            Link(env, "l", bandwidth_bps=0)

    def test_bad_loss_rate(self, env):
        with pytest.raises(ValueError):
            Link(env, "l", 1e6, loss_rate=1.0,
                 rng=np.random.default_rng(0))

    def test_jitter_requires_rng(self, env):
        with pytest.raises(ValueError):
            Link(env, "l", 1e6, jitter_s=0.1)

    def test_impairment_update_validation(self, env):
        link = Link(env, "l", 1e6)
        with pytest.raises(ValueError):
            link.set_impairment(propagation_s=-1)
        with pytest.raises(ValueError):
            link.set_impairment(loss_rate=0.5)  # no rng configured


class TestLossAndDown:
    def test_loss_fails_transfer(self, env):
        link = Link(env, "l", 1e9, loss_rate=0.999,
                    rng=np.random.default_rng(1))
        out = deliver(env, link, Message(size_bytes=10))
        assert not out["ok"]
        assert isinstance(out["error"], TransferLost)
        assert link.stats.messages_lost == 1

    def test_zero_loss_never_drops(self, env):
        link = Link(env, "l", 1e9, loss_rate=0.0)
        for _ in range(50):
            assert deliver(env, link, Message(size_bytes=10))["ok"]

    def test_down_link_rejects(self, env):
        link = Link(env, "l", 1e6)
        link.set_up(False)
        out = deliver(env, link, Message(size_bytes=10))
        assert not out["ok"]
        assert isinstance(out["error"], LinkDown)

    def test_jitter_adds_nonnegative_delay(self, env):
        link = Link(env, "l", 1e9, propagation_s=0.01, jitter_s=0.005,
                    rng=np.random.default_rng(2))
        base = Link(env, "b", 1e9, propagation_s=0.01)
        for _ in range(20):
            jittered = deliver(env, link, Message(size_bytes=1000))
            clean = deliver(env, base, Message(size_bytes=1000))
            assert jittered["elapsed"] >= clean["elapsed"] - 1e-12


class TestStats:
    def test_counters_accumulate(self, env):
        link = Link(env, "l", 8e6)
        for size in (1000, 2000, 3000):
            deliver(env, link, Message(size_bytes=size))
        assert link.stats.messages_sent == 3
        assert link.stats.bytes_sent == 6000
        assert link.stats.busy_time == pytest.approx(6000 * 8 / 8e6)

    def test_utilization(self, env):
        link = Link(env, "l", 8e6)
        deliver(env, link, Message(size_bytes=100_000))  # 0.1 s busy
        assert link.stats.utilization(1.0) == pytest.approx(0.1)
        assert link.stats.utilization(0.0) == 0.0
