"""Unit tests for repro.net.shaper (tc-like control)."""

import pytest

from repro.net import Link, Message, NetemImpairment, TrafficShaper
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


class TestSetRate:
    def test_mbps_and_bps_equivalent(self, env):
        shaper = TrafficShaper(env)
        l1 = Link(env, "l1", 1e6)
        l2 = Link(env, "l2", 1e6)
        shaper.set_rate(l1, mbps=42)
        shaper.set_rate(l2, bps=42e6)
        assert l1.bandwidth_bps == l2.bandwidth_bps == 42e6

    def test_exactly_one_unit_required(self, env):
        shaper = TrafficShaper(env)
        link = Link(env, "l", 1e6)
        with pytest.raises(ValueError):
            shaper.set_rate(link)
        with pytest.raises(ValueError):
            shaper.set_rate(link, bps=1, mbps=1)

    def test_change_log(self, env):
        shaper = TrafficShaper(env)
        link = Link(env, "l", 1e6)
        shaper.set_rate(link, mbps=10)
        assert shaper.changes[0][1] == "l"


class TestImpairments:
    def test_netem_bundle_applies(self, env):
        import numpy as np

        shaper = TrafficShaper(env)
        link = Link(env, "l", 1e6, rng=np.random.default_rng(0))
        shaper.set_impairment(link, NetemImpairment(
            delay_s=0.05, jitter_s=0.001, loss_rate=0.01))
        assert link.propagation_s == 0.05
        assert link.jitter_s == 0.001
        assert link.loss_rate == 0.01

    def test_invalid_bundle_rejected(self):
        with pytest.raises(ValueError):
            NetemImpairment(delay_s=-1)
        with pytest.raises(ValueError):
            NetemImpairment(loss_rate=1.5)


class TestScheduledChanges:
    def test_rate_change_at_time(self, env):
        shaper = TrafficShaper(env)
        link = Link(env, "l", 8e6)
        shaper.at(10.0, link, mbps=80)
        # Before: 1 Mbit message takes 0.125 s.
        done = []

        def sender(env):
            yield link.transfer(Message(size_bytes=125_000))
            done.append(env.now)
            yield env.timeout(10.5 - env.now)
            yield link.transfer(Message(size_bytes=125_000))
            done.append(env.now)

        env.run(until=env.process(sender(env)))
        assert done[0] == pytest.approx(0.125)
        assert done[1] == pytest.approx(10.5 + 0.0125)

    def test_past_schedule_rejected(self, env):
        shaper = TrafficShaper(env)
        link = Link(env, "l", 1e6)
        env.timeout(5)
        env.run()
        with pytest.raises(ValueError):
            shaper.at(1.0, link, mbps=10)

    def test_empty_schedule_rejected(self, env):
        shaper = TrafficShaper(env)
        link = Link(env, "l", 1e6)
        with pytest.raises(ValueError):
            shaper.at(10.0, link)

    def test_replay_trace(self, env):
        shaper = TrafficShaper(env)
        link = Link(env, "l", 1e6)
        shaper.replay_trace(link, [(1.0, 10), (2.0, 20), (3.0, 5)])
        env.run(until=2.5)
        assert link.bandwidth_bps == 20e6
        env.run(until=3.5)
        assert link.bandwidth_bps == 5e6
