"""Unit tests for repro.render.scene."""

import numpy as np
import pytest

from repro.render.scene import SceneGraph, SceneNode


@pytest.fixture
def graph():
    g = SceneGraph()
    g.add(SceneNode("root", position=[0, 0, 0]))
    g.add(SceneNode("arena", position=[10, 0, 0]), parent="root")
    g.add(SceneNode("avatar", model_id=1, position=[1, 0, 0]),
          parent="arena")
    g.add(SceneNode("far-prop", model_id=2, position=[500, 0, 0]),
          parent="root")
    return g


class TestStructure:
    def test_duplicate_names_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.add(SceneNode("avatar"))

    def test_unknown_parent_rejected(self, graph):
        with pytest.raises(KeyError):
            graph.add(SceneNode("x"), parent="ghost")

    def test_contains_and_len(self, graph):
        assert "avatar" in graph
        assert len(graph) == 4

    def test_remove_subtree(self, graph):
        graph.remove("arena")
        assert "arena" not in graph
        assert "avatar" not in graph
        assert "root" in graph
        assert "arena" not in graph.get("root").children

    def test_world_position_accumulates(self, graph):
        assert np.allclose(graph.world_position("avatar"), [11, 0, 0])


class TestVisibility:
    def test_visible_models_radius(self, graph):
        visible = graph.visible_models(eye=[10, 0, 0], radius=5)
        assert visible == {1}

    def test_shared_working_set(self, graph):
        a = graph.visible_models(eye=[10, 0, 0], radius=20)
        b = graph.visible_models(eye=[15, 0, 0], radius=20)
        assert a & b == {1}  # both see the avatar: shareable content

    def test_radius_validation(self, graph):
        with pytest.raises(ValueError):
            graph.visible_models([0, 0, 0], radius=0)


class TestNodeValidation:
    def test_position_shape(self):
        with pytest.raises(ValueError):
            SceneNode("x", position=[1, 2])

    def test_scale_positive(self):
        with pytest.raises(ValueError):
            SceneNode("x", scale=0)
