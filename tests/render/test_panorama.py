"""Unit tests for repro.render.panorama."""

import pytest

from repro.render.panorama import (
    Panorama,
    PanoramaGrid,
    Viewport,
    crop_time_s,
)
from repro.vision.image import RESOLUTIONS


class TestPanorama:
    def test_size_megabyte_scale(self):
        pano = Panorama(content_id=1, segment=0, pose_cell=0)
        assert 500_000 < pano.size_bytes < 4_000_000

    def test_8k_bigger_than_4k(self):
        small = Panorama(1, 0, 0, resolution=RESOLUTIONS["4k"])
        big = Panorama(1, 0, 0, resolution=RESOLUTIONS["8k"])
        assert big.size_bytes == pytest.approx(4 * small.size_bytes, rel=0.01)

    def test_digest_distinguishes_identity_fields(self):
        base = Panorama(1, 2, 3)
        assert base.digest() == Panorama(1, 2, 3).digest()
        assert base.digest() != Panorama(1, 2, 4).digest()
        assert base.digest() != Panorama(1, 3, 3).digest()
        assert base.digest() != Panorama(2, 2, 3).digest()


class TestGrid:
    def test_single_cell_maps_everything(self):
        grid = PanoramaGrid(1, 1)
        assert grid.cell_for(0, 0) == grid.cell_for(359, 89) == 0

    def test_yaw_sectors(self):
        grid = PanoramaGrid(yaw_cells=4, pitch_cells=1)
        cells = {grid.cell_for(yaw, 0) for yaw in (0, 90, 180, 270)}
        assert cells == {0, 1, 2, 3}

    def test_yaw_wraps(self):
        grid = PanoramaGrid(yaw_cells=4, pitch_cells=1)
        assert grid.cell_for(361, 0) == grid.cell_for(1, 0)
        assert grid.cell_for(-10, 0) == grid.cell_for(350, 0)

    def test_pitch_bands(self):
        grid = PanoramaGrid(yaw_cells=1, pitch_cells=2)
        assert grid.cell_for(0, -45) != grid.cell_for(0, 45)

    def test_pitch_range_validated(self):
        grid = PanoramaGrid()
        with pytest.raises(ValueError):
            grid.cell_for(0, 91)

    def test_cell_count(self):
        assert PanoramaGrid(8, 3).n_cells == 24

    def test_boundary_poses_stay_in_range(self):
        grid = PanoramaGrid(yaw_cells=8, pitch_cells=3)
        for yaw, pitch in ((0, -90), (360, 90), (359.999, 0)):
            assert 0 <= grid.cell_for(yaw, pitch) < grid.n_cells


class TestCrop:
    def test_crop_time_scales_with_panorama(self):
        viewport = Viewport()
        small = Panorama(1, 0, 0, resolution=RESOLUTIONS["1080p"])
        big = Panorama(1, 0, 0, resolution=RESOLUTIONS["8k"])
        assert crop_time_s(big, viewport) > crop_time_s(small, viewport)

    def test_crop_time_4k_realistic(self):
        """4K panorama decode+crop in the ~5 ms range on 2018 hardware."""
        t = crop_time_s(Panorama(1, 0, 0), Viewport())
        assert 0.002 < t < 0.02

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            crop_time_s(Panorama(1, 0, 0), Viewport(), crop_pixels_per_s=0)
