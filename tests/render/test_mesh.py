"""Unit tests for repro.render.mesh (RMSH format + generator)."""

import numpy as np
import pytest

from repro.render.mesh import (
    LOADED_EXPANSION,
    MeshFormatError,
    MeshModel,
    generate_mesh,
    pack_rmsh,
    unpack_rmsh,
)


class TestGenerate:
    def test_size_close_to_target(self):
        for target_kb in (100, 1000, 8000):
            mesh = generate_mesh(1, target_kb)
            actual_kb = len(pack_rmsh(mesh)) / 1024
            assert actual_kb == pytest.approx(target_kb, rel=0.05)

    def test_deterministic_for_same_inputs(self):
        a = generate_mesh(4, 500, seed=1)
        b = generate_mesh(4, 500, seed=1)
        assert a.digest() == b.digest()

    def test_different_ids_different_content(self):
        assert (generate_mesh(1, 500, seed=1).digest()
                != generate_mesh(2, 500, seed=1).digest())

    def test_triangle_indices_valid(self):
        mesh = generate_mesh(1, 300)
        assert int(mesh.triangles.max()) < mesh.n_vertices

    def test_realistic_triangle_ratio(self):
        mesh = generate_mesh(1, 2000)
        ratio = mesh.n_triangles / mesh.n_vertices
        assert 1.5 < ratio <= 2.0

    def test_bad_target_rejected(self):
        with pytest.raises(ValueError):
            generate_mesh(1, 0)


class TestRoundTrip:
    def test_pack_unpack_identity(self):
        mesh = generate_mesh(3, 700, seed=2)
        restored = unpack_rmsh(pack_rmsh(mesh), model_id=3)
        assert np.array_equal(restored.vertices, mesh.vertices)
        assert np.array_equal(restored.triangles, mesh.triangles)
        assert restored.digest() == mesh.digest()

    def test_file_bytes_matches_packed_length(self):
        mesh = generate_mesh(1, 400)
        assert mesh.file_bytes == len(pack_rmsh(mesh))

    def test_loaded_bytes_expansion(self):
        mesh = generate_mesh(1, 400)
        assert mesh.loaded_bytes == int(mesh.file_bytes * LOADED_EXPANSION)


class TestFormatErrors:
    def test_truncated_blob(self):
        with pytest.raises(MeshFormatError):
            unpack_rmsh(b"RM")

    def test_bad_magic(self):
        blob = bytearray(pack_rmsh(generate_mesh(1, 100)))
        blob[:4] = b"XXXX"
        with pytest.raises(MeshFormatError, match="magic"):
            unpack_rmsh(bytes(blob))

    def test_corrupt_payload_detected(self):
        blob = bytearray(pack_rmsh(generate_mesh(1, 100)))
        blob[-1] ^= 0xFF
        with pytest.raises(MeshFormatError, match="checksum"):
            unpack_rmsh(bytes(blob))

    def test_size_mismatch_detected(self):
        blob = pack_rmsh(generate_mesh(1, 100))
        with pytest.raises(MeshFormatError, match="size"):
            unpack_rmsh(blob + b"extra")


class TestMeshModelValidation:
    def test_shape_checks(self):
        with pytest.raises(ValueError):
            MeshModel(1, np.zeros((4, 3), dtype=np.float32),
                      np.zeros((1, 3), dtype=np.uint32))

    def test_index_range_check(self):
        vertices = np.zeros((4, 8), dtype=np.float32)
        bad = np.array([[0, 1, 9]], dtype=np.uint32)
        with pytest.raises(ValueError):
            MeshModel(1, vertices, bad)
