"""Unit tests for repro.render.loader."""

import pytest

from repro.render.loader import (
    EDGE_GPU_2018,
    GpuProfile,
    MOBILE_GPU_2018,
    ModelLoader,
)
from repro.render.mesh import LOADED_EXPANSION, generate_mesh, pack_rmsh


@pytest.fixture
def loader():
    return ModelLoader(MOBILE_GPU_2018)


class TestTiming:
    def test_parse_time_linear_in_size(self, loader):
        base = loader.parse_time(0)
        t1 = loader.parse_time(12_000_000) - base
        t2 = loader.parse_time(24_000_000) - base
        assert t2 == pytest.approx(2 * t1)

    def test_parse_rate_calibration(self, loader):
        # 12 MB at 12 MB/s = 1 s + overhead.
        assert loader.parse_time(12_000_000) == pytest.approx(1.002)

    def test_upload_time(self, loader):
        assert loader.upload_time(60_000_000) == pytest.approx(1.0)

    def test_cache_hit_skips_parse(self, loader):
        file_bytes = 5_000_000
        loaded = int(file_bytes * LOADED_EXPANSION)
        miss = loader.load_cost_from_file(file_bytes)
        hit = loader.load_cost_from_loaded(loaded)
        assert hit.parse_s == 0.0
        assert hit.total_s < miss.total_s
        assert hit.upload_s == pytest.approx(miss.upload_s)

    def test_edge_parses_faster_than_mobile(self):
        mobile = ModelLoader(MOBILE_GPU_2018)
        edge = ModelLoader(EDGE_GPU_2018)
        assert edge.parse_time(10_000_000) < mobile.parse_time(10_000_000)

    def test_negative_sizes_rejected(self, loader):
        with pytest.raises(ValueError):
            loader.parse_time(-1)
        with pytest.raises(ValueError):
            loader.upload_time(-1)


class TestFunctionalParse:
    def test_parse_real_blob(self, loader):
        mesh = generate_mesh(9, 400, seed=0)
        loaded = loader.parse(pack_rmsh(mesh), model_id=9)
        assert loaded.digest == mesh.digest()
        assert loaded.loaded_bytes == mesh.loaded_bytes
        assert loaded.mesh.n_vertices == mesh.n_vertices


class TestProfileValidation:
    def test_rates_positive(self):
        with pytest.raises(ValueError):
            GpuProfile("bad", parse_mb_per_s=0, upload_mb_per_s=1)
        with pytest.raises(ValueError):
            GpuProfile("bad", parse_mb_per_s=1, upload_mb_per_s=1,
                       parse_overhead_s=-0.1)
