"""Unit tests for repro.render.renderer."""

import pytest

from repro.render import Renderer, generate_mesh
from repro.render.renderer import (
    EDGE_RENDER_2018,
    MOBILE_RENDER_2018,
    RenderProfile,
)
from repro.vision.image import RESOLUTIONS


@pytest.fixture
def renderer():
    return Renderer(MOBILE_RENDER_2018)


@pytest.fixture
def meshes():
    return [generate_mesh(i, 800, seed=0) for i in range(3)]


class TestFrameTime:
    def test_more_triangles_slower(self, renderer, meshes):
        pixels = RESOLUTIONS["1080p"].pixels
        assert (renderer.frame_time(meshes, pixels)
                > renderer.frame_time(meshes[:1], pixels))

    def test_more_pixels_slower(self, renderer, meshes):
        assert (renderer.frame_time(meshes, RESOLUTIONS["4k"].pixels)
                > renderer.frame_time(meshes, RESOLUTIONS["720p"].pixels))

    def test_overdraw_scales_fill_cost(self, renderer, meshes):
        pixels = RESOLUTIONS["1080p"].pixels
        t1 = renderer.frame_time(meshes, pixels, overdraw=1.0)
        t2 = renderer.frame_time(meshes, pixels, overdraw=3.0)
        assert t2 > t1

    def test_empty_scene_costs_overhead(self, renderer):
        pixels = RESOLUTIONS["720p"].pixels
        t = renderer.frame_time([], pixels, overdraw=1.0)
        assert t == pytest.approx(
            MOBILE_RENDER_2018.frame_overhead_s
            + pixels / MOBILE_RENDER_2018.fill_rate_pixels_per_s)

    def test_fps_reciprocal(self, renderer, meshes):
        pixels = RESOLUTIONS["1080p"].pixels
        assert renderer.fps(meshes, pixels) == pytest.approx(
            1 / renderer.frame_time(meshes, pixels))

    def test_mobile_calibration_60fps_at_1440p(self, renderer):
        """~500k triangles at 1440p runs near/above 60 fps (2018 phone)."""
        scene = [generate_mesh(i, 3000, seed=1) for i in range(4)]
        fps = renderer.fps(scene, RESOLUTIONS["1440p"].pixels)
        assert fps > 60

    def test_edge_gpu_faster(self, meshes):
        pixels = RESOLUTIONS["4k"].pixels
        assert (Renderer(EDGE_RENDER_2018).frame_time(meshes, pixels)
                < Renderer(MOBILE_RENDER_2018).frame_time(meshes, pixels))


class TestValidation:
    def test_pixels_positive(self, renderer, meshes):
        with pytest.raises(ValueError):
            renderer.frame_time(meshes, 0)

    def test_overdraw_at_least_one(self, renderer, meshes):
        with pytest.raises(ValueError):
            renderer.frame_time(meshes, 100, overdraw=0.5)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            RenderProfile("bad", triangles_per_s=0)
