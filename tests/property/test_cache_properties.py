"""Property-based tests for the IC cache invariants.

The cache is the structure everything else trusts; hypothesis drives it
with arbitrary operation sequences and checks the invariants that must
hold for *any* workload and policy:

* stored bytes never exceed capacity;
* stored bytes always equal the sum of live entry sizes;
* hits + misses == lookups;
* a hash descriptor lookup returns an entry with that digest or nothing.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.cache import ICCache
from repro.core.descriptors import HashDescriptor
from repro.core.policies import make_policy

POLICIES = ("lru", "lfu", "fifo", "size", "gdsf", "ttl:50")

# An operation is (op, digest_index, size) with op in insert/lookup.
operations = st.lists(
    st.tuples(st.sampled_from(["insert", "lookup"]),
              st.integers(min_value=0, max_value=15),
              st.integers(min_value=1, max_value=400)),
    min_size=1, max_size=80)


def digest(i: int) -> str:
    return f"{i:04x}"


@given(ops=operations, policy=st.sampled_from(POLICIES),
       capacity=st.integers(min_value=400, max_value=2000))
@settings(max_examples=60, deadline=None)
def test_capacity_and_accounting_invariants(ops, policy, capacity):
    cache = ICCache(capacity_bytes=capacity, policy=make_policy(policy))
    clock = 0.0
    for op, idx, size in ops:
        clock += 1.0
        if op == "insert":
            cache.insert(HashDescriptor("m", digest(idx)), result=idx,
                         size_bytes=size, now=clock)
        else:
            entry = cache.lookup(HashDescriptor("m", digest(idx)),
                                 now=clock)
            if entry is not None:
                assert entry.descriptor.digest == digest(idx)
        # Core invariants after every operation:
        assert cache.size_bytes <= capacity
        assert cache.size_bytes == sum(e.size_bytes
                                       for e in cache.entries())
        assert cache.size_bytes >= 0
    stats = cache.stats
    assert stats.hits + stats.misses == stats.lookups
    assert len(cache) <= stats.insertions


@given(ops=operations)
@settings(max_examples=30, deadline=None)
def test_lru_eviction_never_removes_most_recent(ops):
    """Immediately after any insert, that entry must still be present."""
    cache = ICCache(capacity_bytes=1000)
    clock = 0.0
    for op, idx, size in ops:
        clock += 1.0
        if op == "insert" and size <= 1000:
            entry = cache.insert(HashDescriptor("m", digest(idx)),
                                 result=idx, size_bytes=size, now=clock)
            if entry is not None:
                found = cache.lookup(HashDescriptor("m", digest(idx)),
                                     now=clock)
                assert found is not None


@given(sizes=st.lists(st.integers(min_value=1, max_value=100),
                      min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_clear_always_empties(sizes):
    cache = ICCache(capacity_bytes=10_000)
    for i, size in enumerate(sizes):
        cache.insert(HashDescriptor("m", digest(i % 16)), i, size)
    cache.clear()
    assert len(cache) == 0
    assert cache.size_bytes == 0


@given(ttl=st.floats(min_value=0.5, max_value=100.0),
       probe_offset=st.floats(min_value=0.0, max_value=200.0))
@settings(max_examples=50, deadline=None)
def test_ttl_expiry_is_exact(ttl, probe_offset):
    cache = ICCache(capacity_bytes=1000, ttl_s=ttl)
    cache.insert(HashDescriptor("m", "aa"), "x", 10, now=0.0)
    entry = cache.lookup(HashDescriptor("m", "aa"), now=probe_offset)
    if probe_offset >= ttl:
        assert entry is None
    else:
        assert entry is not None
