"""Property tests for the reuse machinery behind partial inference.

Generalizes the fixed-case identity tests: the affinity sketch is a
true multiset (insert/drop round-trips to empty), a layer-reuse plan
can never cost more than full inference, and ``ICCache.lookup_batch``
stays decision-identical to sequential lookups under arbitrary bursts.
Runs under the derandomized ``tier1`` profile (see ``tests/conftest``).
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.cache import ICCache
from repro.core.descriptors import HashDescriptor, VectorDescriptor
from repro.core.index import AffinitySketch, SKETCH_DIM
from repro.core.layer_cache import LayerCacheManager
from repro.vision.model_zoo import EDGE_CPU_2018, vgg16

DIM = 8

finite_vector = st.lists(
    st.floats(min_value=-10, max_value=10,
              allow_nan=False, allow_infinity=False),
    min_size=DIM, max_size=DIM).filter(
        lambda v: float(np.linalg.norm(v)) > 1e-6)

sketch_vector = st.lists(
    st.floats(min_value=-10, max_value=10,
              allow_nan=False, allow_infinity=False),
    min_size=SKETCH_DIM, max_size=SKETCH_DIM).filter(
        lambda v: float(np.linalg.norm(v)) > 1e-6)


def arr(values):
    return np.asarray(values, dtype=np.float64)


# -- affinity sketch ----------------------------------------------------------


@given(vectors=st.lists(finite_vector, min_size=0, max_size=30),
       dup_every=st.integers(min_value=1, max_value=4))
@settings(max_examples=60)
def test_sketch_insert_drop_round_trips_to_empty(vectors, dup_every):
    """Adding vectors (with duplicates) then removing every copy leaves
    the empty multiset: no counts, no mass, zero population."""
    sketch = AffinitySketch()
    inserted = []
    for i, v in enumerate(vectors):
        copies = 2 if i % dup_every == 0 else 1
        for _ in range(copies):
            sketch.add(arr(v))
            inserted.append(v)
    assert len(sketch) == len(inserted)
    assert sum(sketch.summary().counts.values()) == len(inserted)
    for v in inserted:
        sketch.remove(arr(v))
    assert len(sketch) == 0
    assert sketch.summary().counts == {}
    assert sketch.summary().n == 0
    # Every bucket drained exactly: nothing survives as a zombie count.
    assert sketch.summary().expected_hit(0) == 0.0


@given(vectors=st.lists(finite_vector, min_size=1, max_size=15),
       order_seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40)
def test_sketch_removal_order_is_irrelevant(vectors, order_seed):
    sketch = AffinitySketch()
    for v in vectors:
        sketch.add(arr(v))
    shuffled = list(vectors)
    np.random.Generator(np.random.PCG64(order_seed)).shuffle(shuffled)
    for v in shuffled:
        sketch.remove(arr(v))
    assert sketch.summary().counts == {}


# -- layer-reuse plans --------------------------------------------------------


_VGG = vgg16()
_LAYER_NAMES = [layer.name for layer in _VGG.layers]


@given(tap_mask=st.lists(st.booleans(), min_size=len(_LAYER_NAMES),
                         max_size=len(_LAYER_NAMES)).filter(any),
       base_threshold=st.floats(min_value=0.01, max_value=1.0),
       tighten=st.floats(min_value=0.05, max_value=1.0),
       cached=st.lists(sketch_vector, min_size=0, max_size=6),
       probe=sketch_vector)
@settings(max_examples=60)
def test_plan_never_costlier_than_full_inference(tap_mask, base_threshold,
                                                 tighten, cached, probe):
    """Whatever is cached and however the thresholds are tuned, a reuse
    plan's remaining FLOPs (and device time) never exceed a full pass —
    partial inference is a pure discount, never a penalty."""
    taps = [name for name, keep in zip(_LAYER_NAMES, tap_mask) if keep]
    cache = ICCache(capacity_bytes=10**9, descriptor_dim=SKETCH_DIM)
    manager = LayerCacheManager(_VGG, cache, tap_layers=taps,
                                base_threshold=base_threshold,
                                tighten=tighten)
    for v in cached:
        manager.insert(arr(v) / np.linalg.norm(arr(v)))
    plan = manager.plan(arr(probe) / np.linalg.norm(arr(probe)))
    assert 0.0 <= plan.compute_gflops <= _VGG.total_gflops + 1e-9
    assert manager.compute_time(plan, EDGE_CPU_2018) <= \
        _VGG.inference_time(EDGE_CPU_2018) + 1e-9
    if plan.resume_after is None:
        assert plan.compute_gflops == _VGG.total_gflops
        assert not plan.full_result
    else:
        assert plan.resume_after in taps
        assert plan.full_result == (plan.resume_after == _LAYER_NAMES[-1])
        if cached:
            # Resuming must skip at least the resumed layer's FLOPs.
            assert plan.compute_gflops < _VGG.total_gflops or \
                _VGG.gflops_between(None, plan.resume_after) == 0.0


# -- batch lookup identity ----------------------------------------------------


_KINDS = ("recognition", "aux")


@st.composite
def cache_workload(draw):
    stored = draw(st.lists(
        st.tuples(st.sampled_from(_KINDS), finite_vector),
        min_size=1, max_size=12))
    hashes = draw(st.lists(st.sampled_from("abcdef"), min_size=0,
                           max_size=4))
    queries = draw(st.lists(st.one_of(
        st.tuples(st.sampled_from(_KINDS), finite_vector),
        st.sampled_from("abcdef12")), min_size=1, max_size=15))
    threshold = draw(st.floats(min_value=0.0, max_value=2.0))
    return stored, hashes, queries, threshold


def _build(stored, hashes):
    cache = ICCache(capacity_bytes=10**9, descriptor_dim=DIM)
    for i, (kind, v) in enumerate(stored):
        cache.insert(VectorDescriptor(kind=kind,
                                      vector=arr(v).astype(np.float32)),
                     f"r{i}", 100, now=float(i))
    for digest in hashes:
        cache.insert(HashDescriptor("model_load", digest), digest, 50)
    return cache


def _descriptor(query):
    if isinstance(query, tuple):
        kind, v = query
        return VectorDescriptor(kind=kind,
                                vector=arr(v).astype(np.float32))
    return HashDescriptor("model_load", query)


@given(workload=cache_workload())
@settings(max_examples=60)
def test_lookup_batch_identical_to_sequential(workload):
    """One vectorized pass answers exactly like N sequential lookups —
    same entries, same stats, same recency/frequency state — under
    random mixed-kind bursts (the edge's micro-batcher contract)."""
    stored, hashes, queries, threshold = workload
    sequential = _build(stored, hashes)
    batched = _build(stored, hashes)
    descriptors = [_descriptor(q) for q in queries]

    expected = [sequential.lookup(d, now=100.0, threshold=threshold)
                for d in descriptors]
    got = batched.lookup_batch(descriptors, now=100.0, threshold=threshold)

    assert [e.entry_id if e else None for e in got] == \
        [e.entry_id if e else None for e in expected]
    assert batched.stats.hits == sequential.stats.hits
    assert batched.stats.misses == sequential.stats.misses
    assert batched.stats.lookups == sequential.stats.lookups
    # Recency/frequency side effects agree entry by entry.
    seq_state = {e.entry_id: (e.hits, e.last_access)
                 for e in sequential.entries()}
    bat_state = {e.entry_id: (e.hits, e.last_access)
                 for e in batched.entries()}
    assert seq_state == bat_state
