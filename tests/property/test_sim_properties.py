"""Property-based tests for the event kernel's ordering guarantees."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.sim import Environment, Resource, Store


@given(delays=st.lists(st.floats(min_value=0, max_value=1000,
                                 allow_nan=False),
                       min_size=1, max_size=50))
@settings(max_examples=80, deadline=None)
def test_events_fire_in_time_order(delays):
    env = Environment()
    fired = []
    for delay in delays:
        env.timeout(delay).callbacks.append(
            lambda e, d=delay: fired.append(d))
    env.run()
    assert fired == sorted(delays)
    assert len(fired) == len(delays)


@given(delays=st.lists(st.floats(min_value=0.01, max_value=10,
                                 allow_nan=False),
                       min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_clock_is_monotone_through_processes(delays):
    env = Environment()
    observed = []

    def worker(env, delay):
        yield env.timeout(delay)
        observed.append(env.now)
        yield env.timeout(delay)
        observed.append(env.now)

    for delay in delays:
        env.process(worker(env, delay))
    env.run()
    assert observed == sorted(observed)


@given(holds=st.lists(st.floats(min_value=0.01, max_value=5,
                                allow_nan=False),
                      min_size=1, max_size=15),
       capacity=st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_resource_never_oversubscribed(holds, capacity):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    active = [0]
    peak = [0]

    def worker(env, hold):
        req = resource.request()
        yield req
        active[0] += 1
        peak[0] = max(peak[0], active[0])
        try:
            yield env.timeout(hold)
        finally:
            active[0] -= 1
            resource.release(req)

    for hold in holds:
        env.process(worker(env, hold))
    env.run()
    assert peak[0] <= capacity
    assert active[0] == 0


@given(items=st.lists(st.integers(), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_store_preserves_fifo_order(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)
            yield env.timeout(0.1)

    def consumer(env):
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items


# Delays chosen to straddle every wheel regime of the default geometry
# (bucket_s=1e-2, 8192 buckets, ~82 s horizon): same-tick, in-horizon,
# and far-future overflow.
_wheel_delay = st.one_of(
    st.floats(min_value=0, max_value=200, allow_nan=False),
    st.sampled_from([0.0, 0.001, 0.005, 0.01, 1.0, 81.92, 100.0]))


@given(bursts=st.lists(
    st.tuples(st.floats(min_value=0, max_value=150, allow_nan=False),
              st.lists(_wheel_delay, min_size=1, max_size=8),
              st.booleans()),
    min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_wheel_and_heap_fire_identically(bursts):
    """The calendar wheel is an exact drop-in for the binary heap.

    Each burst starts at its own simulated time (exercising mid-run
    scheduling and cursor advancement) and registers a batch of
    timeouts; half the bursts wait via the pooled bare-number sleep
    path.  Both queue disciplines must fire every tagged timeout at the
    same simulated time, in the same total order.
    """
    def drive(queue):
        env = Environment(queue=queue)
        fired = []

        def burst(env, start, delays, bare, base):
            if bare:
                yield start
            else:
                yield env.timeout(start)
            for i, delay in enumerate(delays):
                env.timeout(delay).callbacks.append(
                    lambda e, tag=(base, i): fired.append((env.now, tag)))

        for base, (start, delays, bare) in enumerate(bursts):
            env.process(burst(env, start, delays, bare, base))
        env.run()
        return fired

    assert drive("wheel") == drive("heap")


@pytest.mark.parametrize("queue", ["wheel", "heap"])
def test_same_tick_timeouts_fire_in_creation_order(queue):
    """FIFO within one wheel bucket: equal (time, priority) keeps seq order.

    Thirty timeouts with the same delay land in the same tick of the
    same bucket; the heap entries differ only in sequence number, so
    any regression in the entry layout or bucket drain order shows up
    as a permutation here.
    """
    env = Environment(queue=queue)
    fired = []
    for i in range(30):
        env.timeout(0.042).callbacks.append(
            lambda e, i=i: fired.append(i))
    env.run()
    assert fired == list(range(30))
