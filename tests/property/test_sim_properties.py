"""Property-based tests for the event kernel's ordering guarantees."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.sim import Environment, Resource, Store


@given(delays=st.lists(st.floats(min_value=0, max_value=1000,
                                 allow_nan=False),
                       min_size=1, max_size=50))
@settings(max_examples=80, deadline=None)
def test_events_fire_in_time_order(delays):
    env = Environment()
    fired = []
    for delay in delays:
        env.timeout(delay).callbacks.append(
            lambda e, d=delay: fired.append(d))
    env.run()
    assert fired == sorted(delays)
    assert len(fired) == len(delays)


@given(delays=st.lists(st.floats(min_value=0.01, max_value=10,
                                 allow_nan=False),
                       min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_clock_is_monotone_through_processes(delays):
    env = Environment()
    observed = []

    def worker(env, delay):
        yield env.timeout(delay)
        observed.append(env.now)
        yield env.timeout(delay)
        observed.append(env.now)

    for delay in delays:
        env.process(worker(env, delay))
    env.run()
    assert observed == sorted(observed)


@given(holds=st.lists(st.floats(min_value=0.01, max_value=5,
                                allow_nan=False),
                      min_size=1, max_size=15),
       capacity=st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_resource_never_oversubscribed(holds, capacity):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    active = [0]
    peak = [0]

    def worker(env, hold):
        req = resource.request()
        yield req
        active[0] += 1
        peak[0] = max(peak[0], active[0])
        try:
            yield env.timeout(hold)
        finally:
            active[0] -= 1
            resource.release(req)

    for hold in holds:
        env.process(worker(env, hold))
    env.run()
    assert peak[0] <= capacity
    assert active[0] == 0


@given(items=st.lists(st.integers(), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_store_preserves_fifo_order(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)
            yield env.timeout(0.1)

    def consumer(env):
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items
