"""Property-based tests: index implementations agree with brute force."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.descriptors import VectorDescriptor
from repro.core.distance import pairwise
from repro.core.index import LinearIndex, LshIndex

DIM = 8

finite_vector = st.lists(
    st.floats(min_value=-10, max_value=10,
              allow_nan=False, allow_infinity=False),
    min_size=DIM, max_size=DIM).filter(
        lambda v: float(np.linalg.norm(v)) > 1e-6)


def vd(values):
    return VectorDescriptor("r", np.asarray(values, dtype=np.float32))


@given(stored=st.lists(finite_vector, min_size=1, max_size=20),
       query=finite_vector,
       threshold=st.floats(min_value=0.0, max_value=2.0))
@settings(max_examples=80, deadline=None)
def test_linear_index_matches_brute_force(stored, query, threshold):
    index = LinearIndex()
    for i, vec in enumerate(stored):
        index.insert(i, vd(vec))
    got = index.query(vd(query), threshold)

    # float32 storage: brute-force reference must use the same precision.
    stored32 = [np.asarray(v, dtype=np.float32) for v in stored]
    query32 = np.asarray(query, dtype=np.float32)
    distances = [pairwise("cosine", v, query32) for v in stored32]
    best = int(np.argmin(distances))
    eps = 1e-6
    if distances[best] <= threshold - eps:
        assert got is not None
        assert abs(got[1] - distances[best]) < 1e-5
    elif distances[best] > threshold + eps:
        assert got is None


@given(stored=st.lists(finite_vector, min_size=1, max_size=15,
                       unique_by=tuple))
@settings(max_examples=50, deadline=None)
def test_lsh_self_query_always_hits(stored):
    """Querying an indexed vector itself must find it (distance 0)."""
    index = LshIndex(dim=DIM, n_tables=6, n_bits=4)
    for i, vec in enumerate(stored):
        index.insert(i, vd(vec))
    for i, vec in enumerate(stored):
        hit = index.query(vd(vec), threshold=1e-9)
        assert hit is not None
        assert hit[1] <= 1e-6


@given(stored=st.lists(finite_vector, min_size=2, max_size=15),
       removals=st.data())
@settings(max_examples=50, deadline=None)
def test_insert_remove_consistency(stored, removals):
    """After removals, removed ids never surface; survivors still do."""
    for index in (LinearIndex(), LshIndex(dim=DIM, n_tables=4, n_bits=4)):
        for i, vec in enumerate(stored):
            index.insert(i, vd(vec))
        to_remove = removals.draw(st.sets(
            st.integers(min_value=0, max_value=len(stored) - 1),
            max_size=len(stored)))
        for i in to_remove:
            index.remove(i)
        assert len(index) == len(stored) - len(to_remove)
        for i, vec in enumerate(stored):
            hit = index.query(vd(vec), threshold=1e-9)
            if i in to_remove:
                assert hit is None or hit[0] != i
            # Survivors are found unless a duplicate vector shadows them.
