"""Property-based tests: index implementations agree with brute force."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.descriptors import VectorDescriptor
from repro.core.distance import pairwise
from repro.core.index import IvfIndex, LinearIndex, LshIndex

DIM = 8

finite_vector = st.lists(
    st.floats(min_value=-10, max_value=10,
              allow_nan=False, allow_infinity=False),
    min_size=DIM, max_size=DIM).filter(
        lambda v: float(np.linalg.norm(v)) > 1e-6)


def vd(values):
    return VectorDescriptor("r", np.asarray(values, dtype=np.float32))


@given(stored=st.lists(finite_vector, min_size=1, max_size=20),
       query=finite_vector,
       threshold=st.floats(min_value=0.0, max_value=2.0))
@settings(max_examples=80, deadline=None)
def test_linear_index_matches_brute_force(stored, query, threshold):
    index = LinearIndex()
    for i, vec in enumerate(stored):
        index.insert(i, vd(vec))
    got = index.query(vd(query), threshold)

    # float32 storage: brute-force reference must use the same precision.
    stored32 = [np.asarray(v, dtype=np.float32) for v in stored]
    query32 = np.asarray(query, dtype=np.float32)
    distances = [pairwise("cosine", v, query32) for v in stored32]
    best = int(np.argmin(distances))
    eps = 1e-6
    if distances[best] <= threshold - eps:
        assert got is not None
        assert abs(got[1] - distances[best]) < 1e-5
    elif distances[best] > threshold + eps:
        assert got is None


@given(stored=st.lists(finite_vector, min_size=1, max_size=15,
                       unique_by=tuple))
@settings(max_examples=50, deadline=None)
def test_lsh_self_query_always_hits(stored):
    """Querying an indexed vector itself must find it (distance 0)."""
    index = LshIndex(dim=DIM, n_tables=6, n_bits=4)
    for i, vec in enumerate(stored):
        index.insert(i, vd(vec))
    for i, vec in enumerate(stored):
        # Self-match distance floor is dtype-bound (~1e-7 in the
        # default float32 storage), hence the 1e-5 threshold.
        hit = index.query(vd(vec), threshold=1e-5)
        assert hit is not None
        assert hit[1] <= 1e-5


@given(stored=st.lists(finite_vector, min_size=2, max_size=15),
       removals=st.data())
@settings(max_examples=50, deadline=None)
def test_insert_remove_consistency(stored, removals):
    """After removals, removed ids never surface; survivors still do."""
    for index in (LinearIndex(), LshIndex(dim=DIM, n_tables=4, n_bits=4)):
        for i, vec in enumerate(stored):
            index.insert(i, vd(vec))
        to_remove = removals.draw(st.sets(
            st.integers(min_value=0, max_value=len(stored) - 1),
            max_size=len(stored)))
        for i in to_remove:
            index.remove(i)
        assert len(index) == len(stored) - len(to_remove)
        for i, vec in enumerate(stored):
            hit = index.query(vd(vec), threshold=1e-9)
            if i in to_remove:
                assert hit is None or hit[0] != i
            # Survivors are found unless a duplicate vector shadows them.


@given(stored=st.lists(finite_vector, min_size=1, max_size=20),
       queries=st.lists(finite_vector, min_size=0, max_size=10),
       threshold=st.floats(min_value=0.0, max_value=2.0))
@settings(max_examples=80, deadline=None)
def test_linear_query_batch_identical_to_sequential(stored, queries,
                                                    threshold):
    """Batched answers match the sequential path element-wise."""
    index = LinearIndex()
    for i, vec in enumerate(stored):
        index.insert(i, vd(vec))
    probes = [vd(q) for q in queries]
    batch = index.query_batch(probes, threshold)
    sequential = [index.query(p, threshold) for p in probes]
    assert len(batch) == len(sequential)
    for got, want in zip(batch, sequential):
        assert (got is None) == (want is None)
        if got is not None:
            assert got[0] == want[0]
            # Decisions are exact; reported distances wobble within the
            # dtype's gemm margin (float32 default: ~1e-7).
            assert abs(got[1] - want[1]) < 1e-5


@given(stored=st.lists(finite_vector, min_size=1, max_size=20),
       queries=st.lists(finite_vector, min_size=0, max_size=10),
       threshold=st.floats(min_value=0.0, max_value=2.0))
@settings(max_examples=60, deadline=None)
def test_lsh_query_batch_identical_to_sequential(stored, queries,
                                                 threshold):
    index = LshIndex(dim=DIM, n_tables=6, n_bits=4)
    for i, vec in enumerate(stored):
        index.insert(i, vd(vec))
    probes = [vd(q) for q in queries]
    batch = index.query_batch(probes, threshold)
    sequential = [index.query(p, threshold) for p in probes]
    for got, want in zip(batch, sequential):
        assert (got is None) == (want is None)
        if got is not None:
            assert got[0] == want[0]
            assert abs(got[1] - want[1]) < 1e-5


@given(stored=st.lists(finite_vector, min_size=1, max_size=15),
       queries=st.lists(finite_vector, min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_cache_lookup_batch_identical_to_sequential(stored, queries):
    """Two identical caches, one batched and one sequential, stay
    indistinguishable: same hits, same stats, same recency effects."""
    from repro.core.cache import ICCache

    batched = ICCache(capacity_bytes=1_000_000, default_threshold=0.3)
    sequential = ICCache(capacity_bytes=1_000_000, default_threshold=0.3)
    for cache in (batched, sequential):
        for i, vec in enumerate(stored):
            cache.insert(vd(vec), result=i, size_bytes=8)
    probes = [vd(q) for q in queries]
    got = batched.lookup_batch(probes, now=1.0)
    want = [sequential.lookup(p, now=1.0) for p in probes]
    assert [e and e.entry_id for e in got] == \
        [e and e.entry_id for e in want]
    assert batched.stats == sequential.stats


@given(stored=st.lists(finite_vector, min_size=1, max_size=20),
       queries=st.lists(finite_vector, min_size=0, max_size=8),
       threshold=st.floats(min_value=0.0, max_value=2.0))
@settings(max_examples=50, deadline=None)
def test_ivf_query_batch_identical_to_sequential(stored, queries,
                                                 threshold):
    """IVF batched answers match the sequential path element-wise,
    both before training (exact-scan fallback) and after."""
    index = IvfIndex(dim=DIM, min_train=8, seed=3)
    for i, vec in enumerate(stored):
        index.insert(i, vd(vec))
    probes = [vd(q) for q in queries]
    batch = index.query_batch(probes, threshold)
    sequential = [index.query(p, threshold) for p in probes]
    assert len(batch) == len(sequential)
    for got, want in zip(batch, sequential):
        assert (got is None) == (want is None)
        if got is not None:
            assert got[0] == want[0]
            assert abs(got[1] - want[1]) < 1e-5


@given(stored=st.lists(finite_vector, min_size=1, max_size=20),
       queries=st.lists(finite_vector, min_size=0, max_size=8),
       threshold=st.floats(min_value=0.0, max_value=2.0))
@settings(max_examples=50, deadline=None)
def test_int8_query_batch_identical_to_sequential(stored, queries,
                                                  threshold):
    """Scalar-quantized storage: batch == sequential, decision-exact."""
    index = LinearIndex(dtype="int8")
    for i, vec in enumerate(stored):
        index.insert(i, vd(vec))
    probes = [vd(q) for q in queries]
    batch = index.query_batch(probes, threshold)
    sequential = [index.query(p, threshold) for p in probes]
    for got, want in zip(batch, sequential):
        assert (got is None) == (want is None)
        if got is not None:
            assert got[0] == want[0]
            assert abs(got[1] - want[1]) < 1e-5


@given(stored=st.lists(finite_vector, min_size=2, max_size=20),
       removals=st.data())
@settings(max_examples=40, deadline=None)
def test_ivf_insert_remove_round_trip(stored, removals):
    """Under swap-compaction, removed ids never surface and every
    survivor still answers its own vector (small sets probe all cells,
    so the search is exhaustive)."""
    index = IvfIndex(dim=DIM, min_train=8, seed=5)
    for i, vec in enumerate(stored):
        index.insert(i, vd(vec))
    to_remove = removals.draw(st.sets(
        st.integers(min_value=0, max_value=len(stored) - 1),
        max_size=len(stored) - 1))
    for i in to_remove:
        index.remove(i)
    assert len(index) == len(stored) - len(to_remove)
    survivors = [i for i in range(len(stored)) if i not in to_remove]
    for i in survivors:
        hit = index.query(vd(stored[i]), threshold=1e-5)
        assert hit is not None and hit[0] not in to_remove
    # Re-inserting a removed id round-trips cleanly.
    for i in sorted(to_remove):
        index.insert(i, vd(stored[i]))
    assert len(index) == len(stored)


def test_ivf_recall_floor_vs_exact_across_seeds():
    """IVF recall vs LinearIndex ground truth stays >= the acceptance
    floor (0.95) on near-duplicate workloads, across seeds, with the
    trained coarse quantizer actually in play."""
    for seed in range(3):
        rng = np.random.default_rng(seed)
        population = rng.normal(size=(2000, 64))
        population /= np.linalg.norm(population, axis=1, keepdims=True)
        linear = LinearIndex()
        ivf = IvfIndex(dim=64, seed=seed)
        items = [(i, vd(vec)) for i, vec in enumerate(population)]
        linear.insert_batch(items)
        ivf.insert_batch(items)
        assert ivf.trained, f"seed {seed}: expected a trained quantizer"
        probes = [vd(population[i] + rng.normal(0, 0.02, 64))
                  for i in range(100)]
        truth = linear.query_batch(probes, threshold=0.05)
        got = ivf.query_batch(probes, threshold=0.05)
        matched = [(a, b) for a, b in zip(truth, got) if a is not None]
        assert matched, f"seed {seed}: ground truth found no matches"
        recall = sum(1 for a, b in matched
                     if b is not None and b[0] == a[0]) / len(matched)
        assert recall >= 0.95, f"seed {seed}: recall {recall:.2f} < 0.95"


def test_lsh_recall_floor_across_seeds():
    """LSH recall vs LinearIndex ground truth stays >= the documented
    0.8 floor on near-duplicate workloads, across seeds."""
    for seed in range(5):
        rng = np.random.default_rng(seed)
        population = rng.normal(size=(250, 64))
        population /= np.linalg.norm(population, axis=1, keepdims=True)
        linear = LinearIndex()
        lsh = LshIndex(dim=64, n_tables=8, n_bits=10, seed=seed)
        for i, vec in enumerate(population):
            linear.insert(i, vd(vec))
            lsh.insert(i, vd(vec))
        probes = [vd(population[i] + rng.normal(0, 0.02, 64))
                  for i in range(60)]
        truth = linear.query_batch(probes, threshold=0.05)
        got = lsh.query_batch(probes, threshold=0.05)
        matched = [(a, b) for a, b in zip(truth, got) if a is not None]
        assert matched, f"seed {seed}: ground truth found no matches"
        recall = sum(1 for a, b in matched
                     if b is not None and b[0] == a[0]) / len(matched)
        assert recall >= 0.8, f"seed {seed}: recall {recall:.2f} < 0.8"
