"""Property-based tests for vision geometry and mesh serialization."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.distance import pairwise
from repro.render.mesh import generate_mesh, pack_rmsh, unpack_rmsh
from repro.vision.features import EmbeddingSpace
from repro.vision.image import RESOLUTIONS, jpeg_size_bytes

SPACE = EmbeddingSpace(dim=64, n_classes=40, seed=11)


@given(cls=st.integers(min_value=0, max_value=39),
       viewpoint=st.floats(min_value=-5, max_value=5, allow_nan=False),
       key=st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=100, deadline=None)
def test_observations_always_unit_norm(cls, viewpoint, key):
    obs = SPACE.observe(cls, viewpoint, noise_key=key)
    assert np.linalg.norm(obs.vector) == pytest.approx(1.0)


@given(cls=st.integers(min_value=0, max_value=39),
       d1=st.floats(min_value=0, max_value=2, allow_nan=False),
       d2=st.floats(min_value=0, max_value=2, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_noise_free_distance_monotone_in_viewpoint(cls, d1, d2):
    base = SPACE.observe(cls, 0.0).vector
    near_d, far_d = sorted((d1, d2))
    near = pairwise("cosine", base, SPACE.observe(cls, near_d).vector)
    far = pairwise("cosine", base, SPACE.observe(cls, far_d).vector)
    assert near <= far + 1e-9


@given(model_id=st.integers(min_value=0, max_value=1000),
       target_kb=st.floats(min_value=10, max_value=5000),
       seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_rmsh_roundtrip_any_size(model_id, target_kb, seed):
    mesh = generate_mesh(model_id, target_kb, seed=seed)
    blob = pack_rmsh(mesh)
    restored = unpack_rmsh(blob, model_id=model_id)
    assert restored.digest() == mesh.digest()
    assert len(blob) == mesh.file_bytes
    # Size model holds within tolerance at every scale.
    assert len(blob) / 1024 == pytest.approx(target_kb, rel=0.25, abs=16)


@given(q1=st.integers(min_value=1, max_value=100),
       q2=st.integers(min_value=1, max_value=100))
@settings(max_examples=60, deadline=None)
def test_jpeg_size_monotone_in_quality(q1, q2):
    lo, hi = sorted((q1, q2))
    resolution = RESOLUTIONS["1080p"]
    assert jpeg_size_bytes(resolution, lo) <= jpeg_size_bytes(resolution, hi)
