"""Property tests for the federation marketplace (PR 9).

Pins the market layer's contracts under arbitrary inputs: the ledger
conserves credits (double entry means balances always sum to zero),
the auction never awards a bid above the consumer's budget, the
auction is a pure order-insensitive function of its inputs, and
degenerate markets — one operator, or an all-zero-price open market —
reduce the balancers' decisions bit-identically to the broker-less
code path.  Runs under the derandomized ``tier1`` profile.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.market import Bid, FederationBroker
from repro.core.metrics import LEDGER_OFFLOAD, MetricsRecorder
from repro.core.pipeline import AffinityLoadBalancer, PeerLoadBalancer
from repro.core.scenario import EdgeSpec, OperatorSpec, ScenarioSpec

EDGES = ("a", "b", "c", "d")
OPS = ("op0", "op1", "op2")

price = st.floats(min_value=0.0, max_value=10.0,
                  allow_nan=False, allow_infinity=False)
budget = st.one_of(st.none(), price)


def _broker(operators, by_edge, recorder=None):
    spec = ScenarioSpec(edges=tuple(EdgeSpec(name=n) for n in by_edge))
    spec = spec.with_operators(operators, dict(by_edge))
    return FederationBroker(spec, recorder or MetricsRecorder())


# -- credit conservation ------------------------------------------------------


@given(prices=st.lists(price, min_size=len(OPS), max_size=len(OPS)),
       assignment=st.lists(st.integers(min_value=-1,
                                       max_value=len(OPS) - 1),
                           min_size=len(EDGES), max_size=len(EDGES)),
       pairs=st.lists(st.tuples(
           st.integers(min_value=0, max_value=len(EDGES) - 1),
           st.integers(min_value=0, max_value=len(EDGES) - 1)),
           min_size=0, max_size=40))
@settings(max_examples=60)
def test_credit_conservation(prices, assignment, pairs):
    """Any settle sequence leaves operator balances summing to zero,
    and the summary's total earned equals its total spent."""
    operators = tuple(OperatorSpec(name=op, price=p)
                      for op, p in zip(OPS, prices))
    by_edge = {edge: (OPS[k] if k >= 0 else "")
               for edge, k in zip(EDGES, assignment)}
    recorder = MetricsRecorder()
    broker = _broker(operators, by_edge, recorder)
    posted = 0
    for i, j in pairs:
        charge = broker.settle(LEDGER_OFFLOAD, EDGES[i], EDGES[j],
                               now=float(posted))
        if charge is not None:
            posted += 1
            consumer, paid = charge
            assert paid == broker.price_between(EDGES[i], EDGES[j])
            assert consumer == by_edge[EDGES[i]]
    assert len(recorder.ledger) == posted
    assert broker.settled == posted
    balances = recorder.operator_balances()
    assert abs(sum(balances.values())) < 1e-9
    summary = recorder.settlement_summary()
    total_earned = sum(s.earned for s in summary.values())
    total_spent = sum(s.spent for s in summary.values())
    assert total_earned == total_spent
    assert abs(sum(s.net for s in summary.values())) < 1e-9


# -- the auction --------------------------------------------------------------


bids = st.lists(
    st.tuples(st.integers(min_value=0, max_value=9),   # rank load
              price),
    min_size=0, max_size=8).map(
        lambda rows: [Bid(provider=f"p{i}", operator=f"op{i}",
                          rank=(load,), price=p, order=i)
                      for i, (load, p) in enumerate(rows)])


@given(bids=bids, budget=budget)
@settings(max_examples=80)
def test_winner_never_exceeds_budget(bids, budget):
    winner = FederationBroker.auction(bids, budget)
    if winner is None:
        # None only when every bid was unaffordable (or there were none).
        assert all(budget is not None and b.price > budget for b in bids)
    else:
        assert budget is None or winner.price <= budget
        # And the winner is undominated: no affordable bid beats it on
        # the (rank, price, order) total order.
        for b in bids:
            if budget is None or b.price <= budget:
                assert (winner.rank, winner.price, winner.order) <= \
                    (b.rank, b.price, b.order)


@given(bids=bids, budget=budget,
       seeds=st.tuples(st.integers(min_value=0, max_value=2**31),
                       st.integers(min_value=0, max_value=2**31)),
       shuffle_seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=80)
def test_auction_pure_and_order_insensitive(bids, budget, seeds,
                                            shuffle_seed):
    """Same (seed, bids, budget) -> same winner; the seed is inert and
    the bid list's order never matters (``order`` is a field, not a
    position)."""
    first = FederationBroker.auction(bids, budget, seed=seeds[0])
    again = FederationBroker.auction(bids, budget, seed=seeds[0])
    other_seed = FederationBroker.auction(bids, budget, seed=seeds[1])
    shuffled = list(bids)
    np.random.Generator(np.random.PCG64(shuffle_seed)).shuffle(shuffled)
    reordered = FederationBroker.auction(shuffled, budget, seed=seeds[0])
    assert first == again == other_seed == reordered


# -- degenerate markets reduce to the broker-less balancers -------------------


class _FakeEdge:
    def __init__(self, load, summaries=None):
        self.load = load
        self.peer_summaries = summaries or {}


def _free_market():
    """All-zero-price, all-consenting three-operator market."""
    return _broker(tuple(OperatorSpec(name=op) for op in OPS),
                   {"a": OPS[0], "b": OPS[1], "c": OPS[2]})


def _single_operator(op_price, op_budget):
    """Everyone in one domain: prices and budgets can never apply."""
    return _broker((OperatorSpec(name="solo", price=op_price,
                                 budget=op_budget),),
                   {"a": "solo", "b": "solo", "c": "solo"})


loads = st.tuples(st.integers(min_value=0, max_value=9),
                  st.integers(min_value=0, max_value=9),
                  st.integers(min_value=0, max_value=9))


@given(loads=loads, margin=st.integers(min_value=0, max_value=3),
       op_price=price, op_budget=budget)
@settings(max_examples=60)
def test_degenerate_markets_match_least_loaded(loads, margin, op_price,
                                               op_budget):
    def register(balancer):
        balancer.register("a", _FakeEdge(loads[0]), ["b", "c"])
        balancer.register("b", _FakeEdge(loads[1]), ["a"])
        balancer.register("c", _FakeEdge(loads[2]), ["a"])

    plain = PeerLoadBalancer(margin=margin)
    register(plain)
    expected = plain.pick("a")
    for broker in (_free_market(),
                   _single_operator(op_price, op_budget)):
        market = PeerLoadBalancer(margin=margin, broker=broker)
        register(market)
        assert market.pick("a") == expected


@given(loads=loads, margin=st.integers(min_value=0, max_value=3),
       holders=st.sets(st.sampled_from(("b", "c"))),
       content_seed=st.integers(min_value=0, max_value=50),
       with_key=st.booleans())
@settings(max_examples=60)
def test_degenerate_markets_match_affinity(loads, margin, holders,
                                           content_seed, with_key):
    """With arbitrary gossip state: the market-mode affinity pick in a
    free or single-operator market equals the broker-less pick."""
    from repro.core.cache import CacheSummary
    from repro.core.index import AffinitySketch

    rng = np.random.Generator(np.random.PCG64(content_seed))
    content = rng.normal(size=128)
    content /= np.linalg.norm(content)

    def summary_holding(v):
        sketch = AffinitySketch()
        sketch.add(v)
        return CacheSummary(kinds={"recognition": 1},
                            sketches={"recognition": sketch.summary()})

    summaries = {name: summary_holding(content) for name in holders}
    key = content if with_key else None

    def register(balancer):
        balancer.register("a", _FakeEdge(loads[0], dict(summaries)),
                          ["b", "c"])
        balancer.register("b", _FakeEdge(loads[1]), ["a"])
        balancer.register("c", _FakeEdge(loads[2]), ["a"])

    plain = AffinityLoadBalancer(margin=margin)
    register(plain)
    expected = plain.pick("a", key=key)
    for broker in (_free_market(), _single_operator(5.0, None)):
        market = AffinityLoadBalancer(margin=margin, broker=broker)
        register(market)
        assert market.pick("a", key=key) == expected
