"""Property-based tests for network timing invariants."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.net import Link, Message, Topology
from repro.sim import Environment


@given(size=st.integers(min_value=0, max_value=10_000_000),
       bandwidth_mbps=st.floats(min_value=0.1, max_value=1000),
       propagation_ms=st.floats(min_value=0, max_value=500))
@settings(max_examples=100, deadline=None)
def test_one_way_delay_decomposition(size, bandwidth_mbps, propagation_ms):
    env = Environment()
    link = Link(env, "l", bandwidth_mbps * 1e6,
                propagation_s=propagation_ms / 1e3)
    delay = link.one_way_delay(size)
    assert delay == pytest.approx(
        size * 8 / (bandwidth_mbps * 1e6) + propagation_ms / 1e3)
    assert delay >= propagation_ms / 1e3


@given(size_a=st.integers(min_value=0, max_value=1_000_000),
       size_b=st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=50, deadline=None)
def test_transfer_time_monotone_in_size(size_a, size_b):
    env = Environment()
    link = Link(env, "l", 10e6, propagation_s=0.01)
    small, large = sorted((size_a, size_b))
    assert link.one_way_delay(small) <= link.one_way_delay(large)


@given(sizes=st.lists(st.integers(min_value=1, max_value=100_000),
                      min_size=1, max_size=10))
@settings(max_examples=40, deadline=None)
def test_measured_transfer_matches_model_without_queueing(sizes):
    """Sequential transfers take exactly the modeled time each."""
    env = Environment()
    link = Link(env, "l", 8e6, propagation_s=0.005)
    measured = []

    def sender(env):
        for size in sizes:
            start = env.now
            yield link.transfer(Message(size_bytes=size))
            measured.append(env.now - start)

    env.run(until=env.process(sender(env)))
    for size, elapsed in zip(sizes, measured):
        assert elapsed == pytest.approx(link.one_way_delay(size))


@given(hops=st.integers(min_value=1, max_value=6),
       size=st.integers(min_value=1, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_path_latency_is_sum_of_hops(hops, size):
    env = Environment()
    topo = Topology(env)
    names = [f"h{i}" for i in range(hops + 1)]
    for a, b in zip(names, names[1:]):
        topo.add_link(a, b, 10e6, propagation_s=0.001)
    total = topo.nominal_latency(names[0], names[-1], size)
    per_hop = topo.link(names[0], names[1]).one_way_delay(size)
    assert total == pytest.approx(hops * per_hop)
