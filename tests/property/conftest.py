"""Hypothesis configuration for the property suite.

Registers a derandomized ``tier1`` profile (no deadline) and loads it
by default, so property tests draw identical examples on every run and
the tier-1 gate stays deterministic.  Override with
``HYPOTHESIS_PROFILE=dev`` for exploratory randomized runs.  Lives
here, not in ``tests/conftest.py``, so the rest of the suite imports
without hypothesis installed.
"""

import os

from hypothesis import settings

settings.register_profile("tier1", derandomize=True, deadline=None)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "tier1"))
