"""Unit tests for repro.eval.stats and repro.eval.tables."""

import numpy as np
import pytest

from repro.eval.stats import (
    mean_confidence_interval,
    reduction_pct,
    summarize,
)
from repro.eval.tables import format_table, series_block


class TestStats:
    def test_summarize_percentiles(self):
        values = list(range(1, 101))
        s = summarize(values)
        assert s.p50 == pytest.approx(50.5)
        assert s.p99 == pytest.approx(99.01)
        assert s.n == 100

    def test_confidence_interval_contains_mean(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10, 2, size=100)
        mean, lo, hi = mean_confidence_interval(values)
        assert lo < mean < hi
        assert mean == pytest.approx(values.mean())

    def test_confidence_interval_narrows_with_n(self):
        rng = np.random.default_rng(1)
        small = rng.normal(0, 1, size=10)
        large = rng.normal(0, 1, size=1000)
        _, lo_s, hi_s = mean_confidence_interval(small)
        _, lo_l, hi_l = mean_confidence_interval(large)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_degenerate_samples(self):
        mean, lo, hi = mean_confidence_interval([5.0])
        assert mean == lo == hi == 5.0
        mean, lo, hi = mean_confidence_interval([3.0, 3.0, 3.0])
        assert lo == hi == 3.0

    def test_confidence_validation(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_reduction_pct_matches_paper_metric(self):
        # 2400 ms origin -> 1145 ms hit is the paper's 52.28%.
        assert reduction_pct(2400, 1145.28) == pytest.approx(52.28)

    def test_reduction_validation(self):
        with pytest.raises(ValueError):
            reduction_pct(0, 1)


class TestTables:
    def test_alignment_and_rule(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title_included(self):
        text = format_table(["x"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_series_block(self):
        text = series_block("Fig 2a", {"origin": [1.0, 2.0],
                                       "hit": [0.5, 0.6]},
                            x_labels=["(90,9)", "(400,40)"])
        assert "origin" in text and "(400,40)" in text

    def test_series_length_checked(self):
        with pytest.raises(ValueError):
            series_block("t", {"s": [1.0]}, x_labels=["a", "b"])
