"""Unit tests for repro.eval.charts."""

import pytest

from repro.eval.charts import bar_chart, sparkline


class TestBarChart:
    def test_renders_all_groups_and_series(self):
        text = bar_chart("Fig", ["(90,9)", "(400,40)"],
                         {"Origin": [2061, 802], "Hit": [1029, 915]})
        assert "(90,9)" in text and "(400,40)" in text
        assert "Origin" in text and "Hit" in text
        assert "2061" in text

    def test_bars_proportional(self):
        text = bar_chart("Fig", ["a"], {"big": [100], "small": [50]},
                         width=20)
        lines = [l for l in text.splitlines() if "|" in l]
        big = lines[0].count("#")
        small = lines[1].count("#")
        assert big == 20
        assert small == pytest.approx(10, abs=1)

    def test_zero_value_empty_bar(self):
        text = bar_chart("Fig", ["a"], {"none": [0], "some": [10]})
        zero_line = [l for l in text.splitlines() if "none" in l][0]
        assert "#" not in zero_line

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart("t", [], {"s": []})
        with pytest.raises(ValueError):
            bar_chart("t", ["a"], {"s": [1, 2]})
        with pytest.raises(ValueError):
            bar_chart("t", ["a"], {"s": [-1]})
        with pytest.raises(ValueError):
            bar_chart("t", ["a"], {"s": [1]}, width=0)

    def test_all_zero_values_ok(self):
        text = bar_chart("t", ["a"], {"s": [0.0]})
        assert "0" in text


class TestSparkline:
    def test_monotone_values_monotone_blocks(self):
        line = sparkline([1, 2, 3, 4])
        assert line == "".join(sorted(line))

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_length_matches(self):
        assert len(sparkline(list(range(10)))) == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])
