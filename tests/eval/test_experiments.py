"""Tests for the experiment modules (small parameterizations).

These run the actual figure/ablation code paths with reduced sizes and
assert the *shape* claims each experiment exists to demonstrate — the
same assertions the full-size benchmarks make.
"""

import pytest

from repro.eval.experiments.eviction import run_eviction
from repro.eval.experiments.fig2a import run_fig2a
from repro.eval.experiments.fig2b import run_fig2b
from repro.eval.experiments.index_scaling import run_index_scaling
from repro.eval.experiments.layers import run_layer_cache
from repro.eval.experiments.panorama_exp import run_panorama
from repro.eval.experiments.privacy_exp import run_privacy
from repro.eval.experiments.sharing import run_sharing
from repro.eval.experiments.speculative import run_speculative
from repro.eval.experiments.thresholds import run_threshold_sweep


class TestFig2a:
    def test_constrained_pair_shape(self):
        result = run_fig2a(pairs=((90, 9), (400, 40)), repeats=1)
        low, high = result.rows
        # Hit wins clearly at the constrained pair...
        assert low.hit_ms < low.origin_ms
        assert low.reduction_pct > 40
        # ...and Origin latencies fall as bandwidth grows.
        assert high.origin_ms < low.origin_ms
        # Miss never undercuts Origin by more than noise.
        assert low.miss_ms >= low.origin_ms * 0.98

    def test_headline_number_ballpark(self):
        result = run_fig2a(repeats=1)
        assert 45 <= result.max_reduction_pct <= 65  # paper: 52.28

    def test_repeats_validated(self):
        with pytest.raises(ValueError):
            run_fig2a(repeats=0)


class TestFig2b:
    def test_shape(self):
        result = run_fig2b(sizes_kb=(231, 15053))
        small, large = result.rows
        for row in result.rows:
            assert row.hit_ms < row.origin_ms
            assert row.miss_ms >= row.origin_ms * 0.99
        # Reduction grows with model size; headline near the paper's.
        assert large.reduction_pct > small.reduction_pct
        assert 70 <= result.max_reduction_pct <= 85  # paper: 75.86

    def test_origin_scale_matches_paper_axis(self):
        result = run_fig2b(sizes_kb=(15053,))
        assert 5000 <= result.rows[0].origin_ms <= 8000  # ~6 s bar

    def test_empty_sizes_rejected(self):
        with pytest.raises(ValueError):
            run_fig2b(sizes_kb=())


class TestAblations:
    def test_threshold_tradeoff(self):
        rows = run_threshold_sweep(thresholds=(0.005, 0.1, 0.7),
                                   n_users=4, duration_s=60)
        tight, mid, loose = rows
        assert tight.hit_ratio < mid.hit_ratio <= loose.hit_ratio
        assert loose.accuracy < tight.accuracy

    def test_sharing_grows_with_users(self):
        rows = run_sharing(user_counts=(1, 8), requests_per_user=6)
        solo, crowd = rows
        assert crowd.hit_ratio > solo.hit_ratio
        assert crowd.reduction_pct > solo.reduction_pct

    def test_eviction_smarter_policies_win(self):
        rows = run_eviction(policies=("lru", "lfu"),
                            capacity_fracs=(0.1,),
                            n_models=50, n_requests=120)
        by_policy = {r.policy: r for r in rows}
        # Under Zipf skew, frequency-aware beats pure recency (or ties).
        assert by_policy["lfu"].hit_ratio >= by_policy["lru"].hit_ratio

    def test_layer_cache_degrades_gracefully(self):
        rows = run_layer_cache(deltas=(0.0, 2.0, 4.0), repeats=6)
        near, mid, far = rows
        assert near.layered_saved_pct > 90
        assert near.layered_saved_pct >= mid.layered_saved_pct \
            >= far.layered_saved_pct
        # The layered cache saves something where coarse saves ~nothing.
        assert mid.layered_saved_pct > mid.coarse_saved_pct - 100

    def test_privacy_tradeoff(self):
        rows = run_privacy(n_pairs=40)
        by_name = {r.mechanism: r for r in rows}
        assert by_name["none"].leakage == pytest.approx(1.0)
        # Sketches: fewer bits leak less.
        assert (by_name["sketch(64)"].leakage
                < by_name["sketch(1024)"].leakage)
        # Utility mostly survives at moderate settings.
        assert by_name["sketch(256)"].hit_recall > 0.9

    def test_panorama_sharing(self):
        rows = run_panorama(viewer_counts=(1, 4), segments=8)
        solo, crowd = rows
        assert crowd.hit_ratio > solo.hit_ratio
        assert crowd.backhaul_mb < crowd.origin_backhaul_mb

    def test_index_scaling(self):
        rows = run_index_scaling(sizes=(100, 2000), n_queries=10)
        small, large = rows
        # Linear scan cost grows with occupancy; LSH recall stays high.
        assert large.linear_wall_us > small.linear_wall_us
        assert large.lsh_recall >= 0.8

    def test_speculative_saves_miss_latency(self):
        rows = run_speculative(pairs=((100, 10),))
        row = rows[0]
        assert row.miss_ms_speculative < row.miss_ms_sequential
        assert row.wasted_mb_per_hit > 0
