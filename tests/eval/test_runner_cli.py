"""Tests for the experiment registry, replication runner and CLI."""

import pytest

from repro.cli import main
from repro.eval.runner import (
    Replication,
    experiment_names,
    replicate,
    run_experiment,
)


class TestRegistry:
    def test_all_experiments_registered(self):
        names = experiment_names()
        for expected in ("fig2a", "fig2b", "thresholds", "sharing",
                         "eviction", "layers", "privacy", "panorama",
                         "index", "speculative", "federation"):
            assert expected in names

    def test_run_by_name_with_overrides(self):
        result = run_experiment("fig2a", pairs=((90, 9),), repeats=1)
        assert len(result.rows) == 1

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")


class TestReplicate:
    def test_seed_sweep_summary(self):
        rep = replicate("sharing", seeds=(0, 1),
                        metric=lambda rows: rows[-1].hit_ratio,
                        user_counts=(1, 4), requests_per_user=4)
        assert isinstance(rep, Replication)
        assert len(rep.values) == 2
        assert rep.ci_low <= rep.mean <= rep.ci_high

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate("fig2a", seeds=(), metric=lambda r: 0.0)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2a" in out and "federation" in out

    def test_run_renders_table(self, capsys):
        assert main(["run", "index"]) == 0
        out = capsys.readouterr().out
        assert "n_entries" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_demo(self, capsys):
        assert main(["demo", "--wifi", "90", "--backhaul", "9"]) == 0
        out = capsys.readouterr().out
        assert "origin" in out and "hit" in out


class TestScenarioCli:
    def test_mobility_experiment_registered(self):
        assert "mobility" in experiment_names()

    def test_scenario_from_file(self, tmp_path, capsys):
        import json

        from repro.core.scenario import MobilitySpec, ScenarioSpec

        spec = ScenarioSpec.metro(
            n_edges=2, clients_per_edge=1,
            mobility=MobilitySpec(mean_dwell_s=5.0, duration_s=20.0))
        path = tmp_path / "city.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert main(["scenario", str(path), "--duration", "20",
                     "--wifi", "100", "--backhaul", "10"]) == 0
        out = capsys.readouterr().out
        assert "2 edges" in out
        assert "hit ratio" in out
        assert "handoffs" in out
        assert "recognition" in out

    def test_scenario_inline_json(self, capsys):
        assert main(["scenario",
                     '{"edges": [{"name": "e0", "clients": ["m0"]}]}',
                     "--duration", "10"]) == 0
        out = capsys.readouterr().out
        assert "1 edges" in out and "hit ratio" in out

    def test_scenario_bad_spec(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"edges": []}')
        assert main(["scenario", str(path)]) == 2
        assert "bad scenario spec" in capsys.readouterr().err

    def test_scenario_profile_prints_hot_functions(self, capsys):
        assert main(["scenario",
                     '{"edges": [{"name": "e0", "clients": ["m0"]}]}',
                     "--duration", "10", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out  # the pstats table header
        assert "_run_wheel" in out  # the kernel hot loop is visible
        assert "hit ratio" in out   # the normal report still follows
