"""Unit tests for repro.core.tasks, config and metrics."""

import pytest

from repro.core.config import (
    CacheConfig,
    CoICConfig,
    NetworkConfig,
    RecognitionConfig,
    RenderingConfig,
)
from repro.core.metrics import (
    LatencySummary,
    MetricsRecorder,
    RequestRecord,
)
from repro.core.tasks import (
    ModelLoadResult,
    ModelLoadTask,
    PanoramaTask,
    RecognitionTask,
)
from repro.render.mesh import LOADED_EXPANSION
from repro.render.panorama import Panorama
from repro.vision.image import CameraFrame


class TestTasks:
    def test_recognition_input_is_frame_size(self):
        frame = CameraFrame(object_class=1)
        task = RecognitionTask(frame=frame)
        assert task.input_bytes == frame.size_bytes
        assert task.kind == "recognition"

    def test_model_load_loaded_bytes(self):
        task = ModelLoadTask(model_id=1, digest="ab", file_bytes=1000)
        assert task.loaded_bytes == int(1000 * LOADED_EXPANSION)
        assert task.input_bytes < 1000  # request is a reference

    def test_model_load_validation(self):
        with pytest.raises(ValueError):
            ModelLoadTask(model_id=1, digest="ab", file_bytes=0)

    def test_panorama_task_reference_sized(self):
        task = PanoramaTask(panorama=Panorama(1, 2, 0))
        assert task.input_bytes < 1000

    def test_model_load_result_size(self):
        result = ModelLoadResult(digest="ab", payload_bytes=5000,
                                 parsed=True)
        assert result.size_bytes == 5000 + 128


class TestConfig:
    def test_defaults_valid(self):
        config = CoICConfig()
        assert config.network.wifi_mbps == 400.0
        assert config.cache.capacity_bytes == int(2048 * 1e6)

    def test_network_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(wifi_mbps=0)
        with pytest.raises(ValueError):
            NetworkConfig(loss_rate=1.0)
        with pytest.raises(ValueError):
            NetworkConfig(backhaul_delay_ms=-1)

    def test_recognition_validation(self):
        with pytest.raises(ValueError):
            RecognitionConfig(descriptor_source="fog")
        with pytest.raises(ValueError):
            RecognitionConfig(threshold=-0.1)

    def test_rendering_validation(self):
        with pytest.raises(ValueError):
            RenderingConfig(catalog_sizes_kb=())
        with pytest.raises(ValueError):
            RenderingConfig(catalog_sizes_kb=(0,))

    def test_cache_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity_mb=0)

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            CoICConfig(edge_workers=0)


class TestLatencySummary:
    def test_of_values(self):
        s = LatencySummary.of([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.p50 == pytest.approx(2.5)
        assert (s.min, s.max) == (1.0, 4.0)

    def test_empty(self):
        s = LatencySummary.of([])
        assert s.n == 0

    def test_single_value_zero_std(self):
        assert LatencySummary.of([5.0]).std == 0.0


class TestMetricsRecorder:
    @pytest.fixture
    def recorder(self):
        r = MetricsRecorder()
        rows = [
            ("recognition", "hit", "u1", 0.0, 1.0, True),
            ("recognition", "miss", "u1", 1.0, 3.5, True),
            ("recognition", "hit", "u2", 2.0, 2.9, False),
            ("model_load", "origin", "u1", 0.0, 2.0, None),
        ]
        for kind, outcome, user, start, end, correct in rows:
            r.record(RequestRecord(task_kind=kind, outcome=outcome,
                                   user=user, start_s=start, end_s=end,
                                   correct=correct))
        return r

    def test_select_filters(self, recorder):
        assert len(recorder.select(task_kind="recognition")) == 3
        assert len(recorder.select(outcome="hit")) == 2
        assert len(recorder.select(user="u2")) == 1
        assert len(recorder.select(task_kind="recognition",
                                   outcome="hit", user="u1")) == 1

    def test_hit_ratio(self, recorder):
        assert recorder.hit_ratio("recognition") == pytest.approx(2 / 3)
        assert recorder.hit_ratio("model_load") == 0.0

    def test_accuracy(self, recorder):
        assert recorder.accuracy("recognition") == pytest.approx(2 / 3)

    def test_latencies(self, recorder):
        assert recorder.latencies(outcome="miss") == [2.5]

    def test_reduction(self):
        assert MetricsRecorder.reduction(2.0, 1.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            MetricsRecorder.reduction(0.0, 1.0)

    def test_invalid_record_rejected(self):
        r = MetricsRecorder()
        with pytest.raises(ValueError):
            r.record(RequestRecord(task_kind="x", outcome="hit", user="u",
                                   start_s=5.0, end_s=1.0))

    def test_group_summaries(self, recorder):
        groups = recorder.group_summaries(lambda r: r.outcome)
        assert set(groups) == {"hit", "miss", "origin"}
        assert groups["hit"].n == 2
