"""Unit tests for repro.core.layer_cache (paper §4 fine-grained reuse)."""

import numpy as np
import pytest

from repro.core.cache import ICCache
from repro.core.layer_cache import (
    LayerCacheManager,
    LayerReusePlan,
    SKETCH_DIM,
    input_sketch,
)
from repro.vision.features import EmbeddingSpace
from repro.vision.model_zoo import EDGE_CPU_2018, vgg16


@pytest.fixture
def network():
    return vgg16()


@pytest.fixture
def manager(network):
    cache = ICCache(capacity_bytes=512_000_000)
    return LayerCacheManager(network, cache, base_threshold=0.05,
                             tighten=0.4)


@pytest.fixture
def space():
    return EmbeddingSpace(dim=128, n_classes=20, seed=0)


class TestSketch:
    def test_sketch_shape_and_norm(self, space):
        sketch = input_sketch(space.observe(1, 0.0).vector)
        assert sketch.shape == (SKETCH_DIM,)
        assert np.linalg.norm(sketch) == pytest.approx(1.0)

    def test_deterministic(self, space):
        vec = space.observe(2, 0.1, noise_key=7).vector
        assert np.array_equal(input_sketch(vec), input_sketch(vec))

    def test_too_small_vector_rejected(self):
        with pytest.raises(ValueError):
            input_sketch(np.ones(8))


class TestThresholds:
    def test_deeper_layers_tighter(self, manager):
        taps = manager.tap_layers
        thresholds = [manager.threshold_for(name) for name in taps]
        assert all(a >= b for a, b in zip(thresholds, thresholds[1:]))
        assert thresholds[0] == pytest.approx(0.05)
        assert thresholds[-1] == pytest.approx(0.05 * 0.4)

    def test_parameter_validation(self, network):
        cache = ICCache(capacity_bytes=1000)
        with pytest.raises(ValueError):
            LayerCacheManager(network, cache, base_threshold=0)
        with pytest.raises(ValueError):
            LayerCacheManager(network, cache, tighten=0)
        with pytest.raises(KeyError):
            LayerCacheManager(network, cache, tap_layers=["ghost"])


class TestPlan:
    def test_identical_input_full_reuse(self, manager, space):
        sketch = input_sketch(space.observe(3, 0.0).vector)
        # Full-result reuse needs the result cached with the final tap;
        # a marker-only insert is not servable and plans one tap up.
        manager.insert(sketch, result=("label", 3))
        plan = manager.plan(sketch)
        assert plan.full_result
        assert plan.compute_gflops == 0.0
        assert manager.compute_time(plan, EDGE_CPU_2018) == 0.0
        marker_only = LayerCacheManager(manager.network, manager.cache,
                                        base_threshold=0.05, tighten=0.4)
        other = input_sketch(space.observe(9, 0.0).vector)
        marker_only.insert(other)
        assert not marker_only.plan(other).full_result

    def test_unknown_input_full_compute(self, manager, space, network):
        manager.insert(input_sketch(space.observe(3, 0.0).vector))
        far = input_sketch(space.observe(9, 0.0).vector)
        plan = manager.plan(far)
        assert plan.resume_after is None
        assert plan.compute_gflops == pytest.approx(network.total_gflops)

    def test_partial_reuse_monotone_in_distance(self, manager, space,
                                                network):
        """Closer probes resume from deeper layers (fewer FLOPs left)."""
        space_wide = EmbeddingSpace(dim=128, n_classes=20,
                                    viewpoint_scale=0.6, noise_sigma=0.0,
                                    seed=1)
        ref = input_sketch(space_wide.observe(3, 0.0).vector)
        manager.insert(ref)
        remaining = []
        for delta in (0.0, 1.0, 2.0, 4.0):
            probe = input_sketch(space_wide.observe(3, delta).vector)
            remaining.append(manager.plan(probe).compute_gflops)
        assert remaining == sorted(remaining)

    def test_insert_charges_activation_bytes(self, manager, space,
                                             network):
        sketch = input_sketch(space.observe(3, 0.0).vector)
        stored = manager.insert(sketch)
        assert stored == len(network.layers)
        expected = sum(layer.output_bytes for layer in network.layers)
        assert manager.cache.size_bytes == expected

    def test_attached_result_charges_its_bytes(self, manager, space,
                                               network):
        from repro.vision.recognition import RecognitionResult

        sketch = input_sketch(space.observe(3, 0.0).vector)
        final = network.layers[-1].name
        result = RecognitionResult(label=3, confidence=0.9)
        manager.insert(sketch, layers=[final], result=result)
        # The result payload rides the entry: it pays its own bytes in
        # the shared budget (and on the wire when the entry is shipped).
        assert manager.cache.size_bytes == \
            network.layer(final).output_bytes + result.size_bytes
        # Attaching a result to a tap set without the final layer would
        # silently disable full-result reuse — rejected loudly instead.
        with pytest.raises(ValueError):
            manager.insert(sketch, layers=["conv3"], result=result)

    def test_eviction_degrades_gracefully(self, space, network):
        """A tiny cache holds only some layers; plans still work."""
        small = ICCache(capacity_bytes=4_000_000)  # < conv1 activation
        manager = LayerCacheManager(network, small, base_threshold=0.05)
        sketch = input_sketch(space.observe(3, 0.0).vector)
        manager.insert(sketch)
        plan = manager.plan(sketch)
        assert isinstance(plan, LayerReusePlan)
        assert plan.compute_gflops <= network.total_gflops

    def test_compute_time_uses_device(self, manager, space, network):
        space2 = EmbeddingSpace(dim=128, n_classes=20,
                                viewpoint_scale=0.6, noise_sigma=0.0,
                                seed=1)
        manager.insert(input_sketch(space2.observe(3, 0.0).vector))
        probe = input_sketch(space2.observe(3, 2.0).vector)
        plan = manager.plan(probe)
        if not plan.full_result:
            expected = (EDGE_CPU_2018.invocation_overhead_s
                        + plan.compute_gflops
                        / EDGE_CPU_2018.effective_gflops)
            assert manager.compute_time(plan, EDGE_CPU_2018) == \
                pytest.approx(expected)


class TestTapBudget:
    """Byte-budget-aware tap selection: oversized activations never cached."""

    def test_oversized_taps_skipped(self, network):
        cache = ICCache(capacity_bytes=64_000_000)
        # 4 MB ceiling: vgg16's conv1 (12.8 MB) and conv2 (6.4 MB)
        # would each monopolize a small cabinet cache.
        manager = LayerCacheManager(network, cache,
                                    tap_budget_bytes=4_000_000)
        assert manager.skipped_taps == ["conv1", "conv2"]
        assert "conv1" not in manager.tap_layers
        assert manager.tap_layers[0] == "conv3"
        assert manager.tap_layers[-1] == network.layers[-1].name

    def test_no_budget_keeps_every_tap(self, network):
        cache = ICCache(capacity_bytes=64_000_000)
        manager = LayerCacheManager(network, cache)
        assert manager.skipped_taps == []
        assert manager.tap_layers == [l.name for l in network.layers]

    def test_insert_never_stores_oversized_activations(self, network,
                                                       space):
        cache = ICCache(capacity_bytes=64_000_000)
        manager = LayerCacheManager(network, cache,
                                    tap_budget_bytes=4_000_000)
        sketch = input_sketch(space.observe(3, 0.0).vector)
        stored = manager.insert(sketch)
        assert stored == len(manager.tap_layers)
        kinds = {e.descriptor.kind for e in cache.entries()}
        assert "layer:conv1" not in kinds
        assert "layer:conv3" in kinds

    def test_plan_resumes_at_deepest_affordable_tap(self, network, space):
        cache = ICCache(capacity_bytes=64_000_000)
        manager = LayerCacheManager(network, cache,
                                    tap_budget_bytes=4_000_000)
        sketch = input_sketch(space.observe(3, 0.0).vector)
        # Only shallow taps for this input: a same-input probe resumes
        # at the deepest *stored* tap, which the budget bounds.
        manager.insert(sketch, layers=["conv3", "conv4"])
        plan = manager.plan(sketch)
        assert plan.resume_after == "conv4"
        assert not plan.full_result

    def test_budget_excluding_everything_rejected(self, network):
        cache = ICCache(capacity_bytes=64_000_000)
        with pytest.raises(ValueError):
            LayerCacheManager(network, cache, tap_budget_bytes=100)
        with pytest.raises(ValueError):
            LayerCacheManager(network, cache, tap_budget_bytes=0)

    def test_deployment_wires_budget_from_cache_capacity(self):
        from repro.core.cluster import ClusterDeployment
        from repro.core.config import CoICConfig
        from repro.core.scenario import (
            ClientSpec,
            EdgePolicySpec,
            EdgeSpec,
            ScenarioSpec,
        )

        # A 64 MB cabinet edge with a 10% tap budget (6.4 MB): conv1
        # (12.8 MB) and conv2 (6.42 MB, a hair over) are skipped;
        # conv3 (3.2 MB) fits.
        spec = ScenarioSpec(
            edges=(EdgeSpec(name="edge0", cache_mb=64.0,
                            clients=(ClientSpec(name="m0"),)),),
            policy=EdgePolicySpec(layer_reuse=True,
                                  layer_tap_budget_frac=0.10))
        dep = ClusterDeployment(spec, config=CoICConfig())
        manager = dep.layer_managers["edge0"]
        assert manager.tap_budget_bytes == 6_400_000
        assert manager.skipped_taps == ["conv1", "conv2"]
        assert "conv3" in manager.tap_layers
