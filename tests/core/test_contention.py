"""Load-behaviour tests: worker pools, queueing, and congestion.

The deployment's bounded resources must produce the queueing phenomena a
real edge shows — these tests pin that behaviour so calibration changes
don't silently turn the edge into an infinitely parallel machine.
"""

import pytest

from repro.core import CoICConfig, CoICDeployment


def build_coic_deployment(edge_workers=1, cloud_workers=8, n_clients=4,
                    wifi=400, backhaul=40):
    config = CoICConfig()
    config.network.wifi_mbps = wifi
    config.network.backhaul_mbps = backhaul
    config.edge_workers = edge_workers
    config.cloud_workers = cloud_workers
    return CoICDeployment(config, n_clients=n_clients)


class TestEdgeWorkerContention:
    def test_single_worker_serializes_extractions(self):
        """With one edge worker, simultaneous recognitions queue."""
        dep = build_coic_deployment(edge_workers=1, n_clients=2)
        plan = [
            (0.0, dep.clients[0], dep.recognition_task(0)),
            (0.0, dep.clients[1], dep.recognition_task(1)),
        ]
        dep.run_concurrent(plan)
        latencies = sorted(r.latency_s for r in dep.recorder.records)
        extraction = dep.edge_recognizer.extraction_time()
        # The second request waits out the first's extraction.
        assert latencies[1] - latencies[0] >= extraction * 0.9

    def test_more_workers_remove_queueing(self):
        def spread(workers):
            dep = build_coic_deployment(edge_workers=workers, n_clients=2)
            plan = [
                (0.0, dep.clients[0], dep.recognition_task(0)),
                (0.0, dep.clients[1], dep.recognition_task(1)),
            ]
            dep.run_concurrent(plan)
            latencies = sorted(r.latency_s for r in dep.recorder.records)
            return latencies[1] - latencies[0]

        assert spread(2) < spread(1) * 0.5


class TestCloudQueueing:
    def test_bounded_cloud_queues_origin_floods(self):
        """More simultaneous origin requests than workers => queueing."""
        dep = build_coic_deployment(cloud_workers=1, n_clients=4)
        plan = [(0.0, dep.origin_clients[i], dep.recognition_task(i))
                for i in range(4)]
        dep.run_concurrent(plan)
        latencies = sorted(r.latency_s for r in dep.recorder.records)
        inference = dep.cloud_recognizer.inference_time()
        # The last request waited behind three inferences.
        assert latencies[-1] - latencies[0] >= 2.5 * inference


class TestBackhaulCongestion:
    def test_shared_backhaul_slows_concurrent_misses(self):
        """Two cold misses at once share the edge->cloud pipe."""
        solo = build_coic_deployment(n_clients=1, backhaul=10)
        record = solo.run_tasks(solo.clients[0],
                                [solo.recognition_task(0)])[0]
        solo_latency = record.latency_s

        dep = build_coic_deployment(n_clients=2, backhaul=10)
        plan = [(0.0, dep.clients[i], dep.recognition_task(i))
                for i in range(2)]
        dep.run_concurrent(plan)
        slowest = max(r.latency_s for r in dep.recorder.records)
        assert slowest > solo_latency * 1.3

    def test_hits_bypass_congested_backhaul(self):
        """A warm cache shields users from backhaul congestion."""
        dep = build_coic_deployment(n_clients=3, backhaul=10)
        # Warm with one object.
        dep.run_tasks(dep.clients[0],
                      [dep.recognition_task(0, viewpoint=-0.2)])
        # One user floods the backhaul with a cold miss while another
        # hits the warm entry.
        plan = [
            (0.0, dep.clients[1], dep.recognition_task(5)),
            (0.0, dep.clients[2],
             dep.recognition_task(0, viewpoint=0.2)),
        ]
        dep.run_concurrent(plan)
        hit = next(r for r in dep.recorder.records if r.outcome == "hit")
        miss = next(r for r in dep.recorder.records
                    if r.outcome == "miss" and r.start_s > 0 or
                    r.outcome == "miss")
        assert hit.latency_s < miss.latency_s


class TestCoalescingUnderLoad:
    def test_panorama_thundering_herd_collapses_to_one_fetch(self):
        dep = build_coic_deployment(n_clients=4, backhaul=20)
        task = dep.panorama_task(0, 0)
        plan = [(0.001 * i, dep.clients[i], task) for i in range(4)]
        dep.run_concurrent(plan)
        # One render at the cloud; three coalesced hits.
        assert dep.cloud.requests_served == 1
        outcomes = sorted(r.outcome for r in dep.recorder.records)
        assert outcomes == ["hit", "hit", "hit", "miss"]
