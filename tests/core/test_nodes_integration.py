"""Integration tests: client + edge + cloud over the simulated network.

These drive full request pipelines through a
:class:`~repro.core.framework.CoICDeployment` and verify the semantics
the figures depend on: hit/miss outcomes, latency ordering, coalescing,
error surfacing and multi-tenant isolation.
"""

import pytest

from repro.core import CoICConfig, CoICDeployment


def build_coic_deployment(n_clients=2, **net_overrides):
    config = CoICConfig()
    config.network.wifi_mbps = net_overrides.get("wifi_mbps", 100)
    config.network.backhaul_mbps = net_overrides.get("backhaul_mbps", 10)
    for key, value in net_overrides.items():
        setattr(config.network, key, value)
    return CoICDeployment(config, n_clients=n_clients)


class TestRecognitionPipeline:
    def test_miss_then_hit_across_users(self):
        dep = build_coic_deployment()
        t1 = dep.recognition_task(5, viewpoint=-0.2)
        r1 = dep.run_tasks(dep.clients[0], [t1])[0]
        t2 = dep.recognition_task(5, viewpoint=0.2)
        r2 = dep.run_tasks(dep.clients[1], [t2])[0]
        assert (r1.outcome, r2.outcome) == ("miss", "hit")
        assert r2.latency_s < r1.latency_s
        assert r2.correct

    def test_different_objects_do_not_collide(self):
        dep = build_coic_deployment()
        dep.run_tasks(dep.clients[0], [dep.recognition_task(5)])
        r = dep.run_tasks(dep.clients[1], [dep.recognition_task(6)])[0]
        assert r.outcome == "miss"
        assert r.correct

    def test_latency_ordering_hit_origin_miss(self):
        dep = build_coic_deployment()
        origin = dep.run_tasks(dep.origin_clients[0],
                               [dep.recognition_task(3)])[0]
        miss = dep.run_tasks(dep.clients[0],
                             [dep.recognition_task(3, viewpoint=0.1)])[0]
        hit = dep.run_tasks(dep.clients[1],
                            [dep.recognition_task(3, viewpoint=0.3)])[0]
        assert hit.latency_s < origin.latency_s < miss.latency_s

    def test_local_baseline_no_network(self):
        dep = build_coic_deployment()
        record = dep.run_tasks(dep.local_clients[0],
                               [dep.recognition_task(2)])[0]
        assert record.outcome == "local"
        # Pure compute: equals the mobile device's inference time.
        assert record.latency_s == pytest.approx(
            dep.mobile_recognizer.inference_time())

    def test_client_descriptor_source(self):
        config = CoICConfig()
        config.recognition.descriptor_source = "client"
        dep = CoICDeployment(config, n_clients=2)
        r1 = dep.run_tasks(dep.clients[0], [dep.recognition_task(1)])[0]
        r2 = dep.run_tasks(dep.clients[1],
                           [dep.recognition_task(1, viewpoint=0.3)])[0]
        assert (r1.outcome, r2.outcome) == ("miss", "hit")

    def test_client_descriptor_without_attached_input(self):
        """Two-phase miss: edge NACKs, client re-sends with the frame."""
        config = CoICConfig()
        config.recognition.descriptor_source = "client"
        config.recognition.attach_input = False
        dep = CoICDeployment(config, n_clients=2)
        r1 = dep.run_tasks(dep.clients[0], [dep.recognition_task(1)])[0]
        assert r1.outcome == "miss"
        r2 = dep.run_tasks(dep.clients[1],
                           [dep.recognition_task(1, viewpoint=0.2)])[0]
        assert r2.outcome == "hit"

    def test_speculative_forward_miss_near_origin(self):
        dep_seq = build_coic_deployment()
        origin = dep_seq.run_tasks(dep_seq.origin_clients[0],
                                   [dep_seq.recognition_task(1)])[0]
        config = CoICConfig()
        config.network.wifi_mbps = 100
        config.network.backhaul_mbps = 10
        config.recognition.speculative_forward = True
        dep = CoICDeployment(config, n_clients=1)
        miss = dep.run_tasks(dep.clients[0], [dep.recognition_task(1)])[0]
        assert miss.outcome == "miss"
        assert miss.latency_s <= origin.latency_s * 1.05


class TestModelLoadPipeline:
    def test_miss_returns_raw_hit_returns_parsed(self):
        dep = build_coic_deployment()
        task = dep.model_load_task(0)
        r1 = dep.run_tasks(dep.clients[0], [task])[0]
        assert r1.outcome == "miss" and r1.detail["parsed"] is False
        dep.env.run()  # background edge parse
        r2 = dep.run_tasks(dep.clients[1], [task])[0]
        assert r2.outcome == "hit" and r2.detail["parsed"] is True
        assert r2.latency_s < r1.latency_s

    def test_concurrent_misses_coalesce(self):
        dep = build_coic_deployment()
        task = dep.model_load_task(4)  # largest: long fetch window
        dep.run_concurrent([
            (0.0, dep.clients[0], task),
            (0.1, dep.clients[1], task),
        ])
        # Exactly one cloud fetch: the second request rode the first.
        assert dep.cloud.requests_served == 1
        outcomes = sorted(r.outcome for r in dep.recorder.records)
        assert outcomes == ["hit", "miss"]

    def test_cache_stores_loaded_bytes(self):
        dep = build_coic_deployment()
        task = dep.model_load_task(1)
        dep.run_tasks(dep.clients[0], [task])
        dep.env.run()
        entries = dep.cache.entries()
        assert len(entries) == 1
        assert entries[0].size_bytes == task.loaded_bytes


class TestPanoramaPipeline:
    def test_hit_after_miss(self):
        dep = build_coic_deployment()
        task = dep.panorama_task(0, 3)
        r1 = dep.run_tasks(dep.clients[0], [task])[0]
        r2 = dep.run_tasks(dep.clients[1], [task])[0]
        assert (r1.outcome, r2.outcome) == ("miss", "hit")

    def test_pose_cells_distinguish(self):
        dep = build_coic_deployment()
        dep.run_tasks(dep.clients[0], [dep.panorama_task(0, 3, 0)])
        r = dep.run_tasks(dep.clients[1], [dep.panorama_task(0, 3, 1)])[0]
        assert r.outcome == "miss"


class TestFaultHandling:
    def test_lossy_network_still_completes(self):
        dep = build_coic_deployment(loss_rate=0.05)
        records = dep.run_tasks(dep.clients[0], [
            dep.recognition_task(i) for i in range(5)])
        assert all(r.outcome in ("hit", "miss") for r in records)

    def test_timeout_surfaces_as_error(self):
        config = CoICConfig()
        config.network.backhaul_mbps = 0.1   # pathological backhaul
        config.request_timeout_s = 0.5
        dep = CoICDeployment(config, n_clients=1)
        record = dep.run_tasks(dep.clients[0],
                               [dep.recognition_task(0)])[0]
        assert record.outcome == "error"
        dep.env.run()  # nothing left over crashes the sim


class TestMetricsPlumbing:
    def test_recorder_sees_all_clients(self):
        dep = build_coic_deployment()
        dep.run_tasks(dep.clients[0], [dep.recognition_task(0)])
        dep.run_tasks(dep.clients[1],
                      [dep.recognition_task(0, viewpoint=0.3)])
        assert dep.recorder.hit_ratio("recognition") == 0.5
        users = {r.user for r in dep.recorder.records}
        assert users == {"mobile0", "mobile1"}

    def test_cache_stats_consistent_with_outcomes(self):
        dep = build_coic_deployment()
        for i in range(4):
            dep.run_tasks(dep.clients[0], [dep.recognition_task(i % 2,
                          viewpoint=0.05 * i)])
        stats = dep.cache.stats
        hits = len(dep.recorder.select(outcome="hit"))
        misses = len(dep.recorder.select(outcome="miss"))
        assert stats.hits == hits
        assert stats.misses == misses


class TestBatchedLookups:
    """Same-tick recognition bursts are matched in one vectorized pass."""

    def test_same_tick_burst_shares_one_batch_pass(self):
        dep = build_coic_deployment(n_clients=4)
        # Warm the cache with one miss so the burst can hit.
        dep.run_tasks(dep.clients[0], [dep.recognition_task(7)])
        batches_before = dep.edge.lookup_batches
        lookups_before = dep.edge.batched_lookups

        plan = [(0.0, dep.clients[i],
                 dep.recognition_task(7, viewpoint=0.05 * i))
                for i in range(4)]
        dep.run_concurrent(plan)

        new_lookups = dep.edge.batched_lookups - lookups_before
        new_batches = dep.edge.lookup_batches - batches_before
        assert new_lookups == 4
        # Coalescing: the burst needed fewer passes than requests.
        assert new_batches < 4
        hits = [r for r in dep.recorder.records if r.outcome == "hit"]
        assert len(hits) == 4

    def test_burst_outcomes_match_staggered_requests(self):
        """Batching is a wall-clock optimization only: a same-tick burst
        and well-separated requests make identical match decisions."""
        outcomes = {}
        for label, gap_s in (("burst", 0.0), ("staggered", 3.0)):
            dep = build_coic_deployment(n_clients=3)
            dep.run_tasks(dep.clients[0], [dep.recognition_task(4)])
            plan = [(gap_s * i, dep.clients[i],
                     dep.recognition_task(4, viewpoint=0.1 * i))
                    for i in range(3)]
            dep.run_concurrent(plan)
            outcomes[label] = [r.outcome for r in dep.recorder.records
                               if r.task_kind == "recognition"]
        assert outcomes["burst"] == outcomes["staggered"]

    def test_federated_peer_probe_joins_batch(self):
        """A federated miss probes the peer; the peer's vector probe
        goes through the same batched-lookup path and still answers."""
        from repro.core.federation import FederatedDeployment

        dep = FederatedDeployment(CoICConfig(), n_edges=2,
                                  clients_per_edge=1)
        # Edge 1 learns the object; edge 0 then hits via the peer probe.
        dep.run_tasks(dep.clients[1][0], [dep.recognition_task(3)])
        record = dep.run_tasks(dep.clients[0][0],
                               [dep.recognition_task(3, viewpoint=0.2)])[0]
        assert record.outcome in ("hit", "miss")
        assert dep.edges[0].peer_hits + dep.edges[0].peer_misses >= 1
