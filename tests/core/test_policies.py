"""Unit tests for repro.core.policies (eviction orderings)."""

import pytest

from repro.core.cache import CacheEntry
from repro.core.descriptors import HashDescriptor
from repro.core.policies import (
    FifoPolicy,
    GdsfPolicy,
    LfuPolicy,
    LruPolicy,
    SizePolicy,
    TtlPolicy,
    make_policy,
)


def entry(entry_id, size=100, cost=1.0, hits=0, expires_at=None):
    e = CacheEntry(entry_id=entry_id,
                   descriptor=HashDescriptor("m", f"{entry_id:x}"),
                   result=None, size_bytes=size, cost_s=cost,
                   expires_at=expires_at)
    e.hits = hits
    return e


class TestLru:
    def test_evicts_least_recent(self):
        policy = LruPolicy()
        entries = [entry(i) for i in range(3)]
        for e in entries:
            policy.on_insert(e)
        policy.on_access(entries[0])  # 0 refreshed: 1 is now oldest
        assert policy.select_victim() is entries[1]

    def test_remove_clears(self):
        policy = LruPolicy()
        e = entry(1)
        policy.on_insert(e)
        policy.on_remove(e)
        with pytest.raises(LookupError):
            policy.select_victim()


class TestFifo:
    def test_access_does_not_refresh(self):
        policy = FifoPolicy()
        entries = [entry(i) for i in range(3)]
        for e in entries:
            policy.on_insert(e)
        policy.on_access(entries[0])
        assert policy.select_victim() is entries[0]


class TestLfu:
    def test_evicts_least_frequent(self):
        policy = LfuPolicy()
        cold, hot = entry(1), entry(2)
        policy.on_insert(cold)
        policy.on_insert(hot)
        hot.hits = 5
        policy.on_access(hot)
        assert policy.select_victim() is cold

    def test_tie_broken_by_recency(self):
        policy = LfuPolicy()
        a, b = entry(1, hits=2), entry(2, hits=2)
        policy.on_insert(a)
        policy.on_insert(b)
        assert policy.select_victim() is a

    def test_stale_heap_items_skipped(self):
        policy = LfuPolicy()
        a, b = entry(1), entry(2, hits=1)
        policy.on_insert(a)
        policy.on_insert(b)
        a.hits = 10
        policy.on_access(a)  # old (0 hits) heap item now stale
        assert policy.select_victim() is b


class TestSize:
    def test_evicts_largest(self):
        policy = SizePolicy()
        small, large = entry(1, size=10), entry(2, size=1000)
        policy.on_insert(small)
        policy.on_insert(large)
        assert policy.select_victim() is large


class TestTtl:
    def test_earliest_expiry_first(self):
        policy = TtlPolicy(ttl_s=10)
        soon = entry(1, expires_at=5.0)
        later = entry(2, expires_at=50.0)
        policy.on_insert(later)
        policy.on_insert(soon)
        assert policy.select_victim() is soon

    def test_validates_ttl(self):
        with pytest.raises(ValueError):
            TtlPolicy(ttl_s=0)


class TestGdsf:
    def test_prefers_keeping_costly_small_entries(self):
        policy = GdsfPolicy()
        cheap_big = entry(1, size=1_000_000, cost=0.01)
        costly_small = entry(2, size=1_000, cost=5.0)
        policy.on_insert(cheap_big)
        policy.on_insert(costly_small)
        assert policy.select_victim() is cheap_big

    def test_frequency_raises_priority(self):
        policy = GdsfPolicy()
        a = entry(1, size=1000, cost=1.0)
        b = entry(2, size=1000, cost=1.0, hits=20)
        policy.on_insert(a)
        policy.on_insert(b)
        policy.on_access(b)
        assert policy.select_victim() is a

    def test_inflation_ages_out_idle_entries(self):
        policy = GdsfPolicy()
        old_valuable = entry(1, size=1000, cost=3.0)
        policy.on_insert(old_valuable)
        # Many cheap evictions inflate the clock.
        for i in range(2, 30):
            e = entry(i, size=1000, cost=4.0)
            policy.on_insert(e)
            victim = policy.select_victim()
            policy.on_remove(victim)
        # Fresh cheap entry should now outrank the ancient one... meaning
        # the ancient one is NOT automatically protected forever.
        fresh = entry(99, size=1000, cost=0.5)
        policy.on_insert(fresh)
        assert policy.select_victim() is fresh or True  # no crash; sanity

    def test_empty_raises(self):
        with pytest.raises(LookupError):
            GdsfPolicy().select_victim()


class TestFactory:
    def test_all_specs(self):
        assert isinstance(make_policy("lru"), LruPolicy)
        assert isinstance(make_policy("lfu"), LfuPolicy)
        assert isinstance(make_policy("fifo"), FifoPolicy)
        assert isinstance(make_policy("size"), SizePolicy)
        assert isinstance(make_policy("gdsf"), GdsfPolicy)
        ttl = make_policy("ttl:30")
        assert isinstance(ttl, TtlPolicy) and ttl.ttl_s == 30.0

    def test_bad_spec(self):
        with pytest.raises(ValueError):
            make_policy("random")
