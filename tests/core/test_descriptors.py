"""Unit tests for repro.core.descriptors."""

import numpy as np
import pytest

from repro.core.descriptors import (
    HashDescriptor,
    VectorDescriptor,
    hash_descriptor_for,
    vector_descriptor_for,
)


class TestVectorDescriptor:
    def test_stores_float32(self):
        d = VectorDescriptor("recognition", np.arange(4, dtype=np.float64))
        assert d.vector.dtype == np.float32
        assert d.dim == 4

    def test_size_bytes(self):
        d = VectorDescriptor("recognition", np.zeros(128))
        assert d.size_bytes == 128 * 4 + 64

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            VectorDescriptor("r", np.zeros((2, 2)))
        with pytest.raises(ValueError):
            VectorDescriptor("r", np.zeros(0))

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            VectorDescriptor("r", np.array([1.0, np.nan]))
        with pytest.raises(ValueError):
            VectorDescriptor("r", np.array([1.0, np.inf]))

    def test_equality_by_content_and_kind(self):
        a = VectorDescriptor("r", np.ones(4))
        b = VectorDescriptor("r", np.ones(4))
        c = VectorDescriptor("other", np.ones(4))
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_is_vector_flag(self):
        assert VectorDescriptor("r", np.ones(2)).is_vector
        assert not HashDescriptor("r", "ab12").is_vector


class TestHashDescriptor:
    def test_valid_hex_required(self):
        with pytest.raises(ValueError):
            HashDescriptor("m", "not-hex!")
        with pytest.raises(ValueError):
            HashDescriptor("m", "")

    def test_size_bytes(self):
        d = HashDescriptor("m", "ab" * 32)  # 32-byte digest
        assert d.size_bytes == 32 + 64

    def test_equality(self):
        assert HashDescriptor("m", "abcd") == HashDescriptor("m", "abcd")
        assert HashDescriptor("m", "abcd") != HashDescriptor("x", "abcd")


class TestFactories:
    def test_hash_descriptor_for_content(self):
        a = hash_descriptor_for("model_load", b"content")
        b = hash_descriptor_for("model_load", b"content")
        c = hash_descriptor_for("model_load", b"different")
        assert a == b
        assert a.digest != c.digest

    def test_vector_descriptor_for_sequence(self):
        d = vector_descriptor_for("recognition", [1.0, 2.0, 3.0])
        assert d.dim == 3
