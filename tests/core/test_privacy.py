"""Unit tests for repro.core.privacy (paper §4 privacy protection)."""

import numpy as np
import pytest

from repro.core.distance import pairwise
from repro.core.privacy import (
    NoisePrivatizer,
    SketchPrivatizer,
    cosine_leakage,
)
from repro.vision.features import EmbeddingSpace


@pytest.fixture
def space():
    return EmbeddingSpace(dim=128, n_classes=30, seed=2)


class TestLeakageMeasure:
    def test_perfect_reconstruction(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_leakage(v, v) == pytest.approx(1.0)
        assert cosine_leakage(v, -v) == pytest.approx(1.0)  # direction known

    def test_orthogonal_reconstruction(self):
        assert cosine_leakage([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_zero_vectors(self):
        assert cosine_leakage([0, 0], [1, 1]) == 0.0


class TestNoisePrivatizer:
    def test_output_normalized(self, space):
        mech = NoisePrivatizer(128, 0.05, np.random.default_rng(0))
        out = mech.transform(space.observe(1, 0.0).vector)
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_more_noise_less_leakage(self, space):
        vec = space.observe(1, 0.0).vector
        leakages = []
        for sigma in (0.01, 0.05, 0.15):
            mech = NoisePrivatizer(128, sigma, np.random.default_rng(1))
            samples = [cosine_leakage(vec, mech.reconstruct(
                mech.transform(vec))) for _ in range(30)]
            leakages.append(np.mean(samples))
        assert leakages[0] > leakages[1] > leakages[2]

    def test_threshold_widening(self):
        mech = NoisePrivatizer(128, 0.05, np.random.default_rng(0))
        assert mech.map_threshold(0.1) == pytest.approx(
            0.1 + 128 * 0.05 ** 2)

    def test_matching_survives_with_mapped_threshold(self, space):
        mech = NoisePrivatizer(128, 0.04, np.random.default_rng(3))
        threshold = space.suggest_threshold(1.0)
        mapped = mech.map_threshold(threshold)
        hits = 0
        for cls in range(30):
            a = mech.transform(space.observe(cls, -0.4).vector)
            b = mech.transform(space.observe(cls, +0.4).vector)
            if pairwise("cosine", a, b) <= mapped:
                hits += 1
        assert hits >= 27  # ~all same-class pairs still match

    def test_validation(self):
        with pytest.raises(ValueError):
            NoisePrivatizer(0, 0.1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            NoisePrivatizer(8, -0.1, np.random.default_rng(0))


class TestSketchPrivatizer:
    def test_output_is_scaled_signs(self):
        mech = SketchPrivatizer(dim=128, n_bits=256)
        out = mech.transform(np.ones(128))
        assert out.shape == (256,)
        assert np.allclose(np.abs(out), 1 / np.sqrt(256))

    def test_one_way_deterministic(self, space):
        mech = SketchPrivatizer(dim=128, n_bits=128)
        vec = space.observe(4, 0.2).vector
        assert np.array_equal(mech.transform(vec), mech.transform(vec))

    def test_angle_preserved_statistically(self, space):
        """Sketch cosine distance tracks the hyperplane-collision law."""
        mech = SketchPrivatizer(dim=128, n_bits=2048)
        a = space.observe(3, -0.5).vector
        b = space.observe(3, +0.5).vector
        theta = float(np.arccos(1 - pairwise("cosine", a, b)))
        sketch_distance = pairwise("cosine", mech.transform(a),
                                   mech.transform(b))
        assert sketch_distance == pytest.approx(2 * theta / np.pi,
                                                abs=0.05)

    def test_matching_survives_with_mapped_threshold(self, space):
        mech = SketchPrivatizer(dim=128, n_bits=512)
        mapped = mech.map_threshold(space.suggest_threshold(1.0))
        hits = cross = 0
        for cls in range(30):
            a = mech.transform(space.observe(cls, -0.4).vector)
            b = mech.transform(space.observe(cls, +0.4).vector)
            c = mech.transform(space.observe((cls + 5) % 30, 0.0).vector)
            hits += pairwise("cosine", a, b) <= mapped
            cross += pairwise("cosine", a, c) <= mapped
        assert hits >= 27
        assert cross == 0

    def test_fewer_bits_less_leakage(self, space):
        vec = space.observe(1, 0.0).vector
        leakages = []
        for bits in (32, 256, 2048):
            mech = SketchPrivatizer(dim=128, n_bits=bits)
            leakages.append(cosine_leakage(
                vec, mech.reconstruct(mech.transform(vec))))
        assert leakages[0] < leakages[1] < leakages[2]

    def test_dimension_validated(self):
        mech = SketchPrivatizer(dim=64)
        with pytest.raises(ValueError):
            mech.transform(np.ones(128))

    def test_threshold_domain_validated(self):
        mech = SketchPrivatizer(dim=8)
        with pytest.raises(ValueError):
            mech.map_threshold(2.5)
