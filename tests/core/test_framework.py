"""Unit tests for repro.core.framework (deployment builder)."""

import pytest

from repro.core import CoICConfig, CoICDeployment


class TestConstruction:
    def test_default_deployment_shape(self):
        dep = CoICDeployment(n_clients=3)
        assert len(dep.clients) == 3
        assert len(dep.origin_clients) == 3
        assert "edge" in dep.topology.hosts
        assert "cloud" in dep.topology.hosts
        assert dep.topology.shortest_path("mobile2", "cloud") == \
            ["mobile2", "edge", "cloud"]

    def test_n_clients_validated(self):
        with pytest.raises(ValueError):
            CoICDeployment(n_clients=0)

    def test_network_config_applied(self):
        config = CoICConfig()
        config.network.wifi_mbps = 90
        config.network.backhaul_mbps = 9
        dep = CoICDeployment(config)
        assert dep.topology.link("mobile0", "edge").bandwidth_bps == 90e6
        assert dep.backhaul_up.bandwidth_bps == 9e6

    def test_catalog_built_from_config(self):
        config = CoICConfig()
        config.rendering.catalog_sizes_kb = (100, 200)
        dep = CoICDeployment(config)
        assert set(dep.catalog) == {0, 1}
        digest0, size0 = dep.catalog[0]
        assert size0 == 100 * 1024
        int(digest0, 16)  # valid hex

    def test_catalog_digests_unique(self):
        dep = CoICDeployment()
        digests = [d for d, _ in dep.catalog.values()]
        assert len(set(digests)) == len(digests)

    def test_same_seed_same_deployment_behaviour(self):
        def run_once():
            dep = CoICDeployment(CoICConfig(seed=5), n_clients=1)
            record = dep.run_tasks(dep.clients[0],
                                   [dep.recognition_task(3)])[0]
            return record.latency_s

        assert run_once() == run_once()


class TestTaskFactories:
    def test_recognition_task_unique_captures(self):
        dep = CoICDeployment()
        t1 = dep.recognition_task(1)
        t2 = dep.recognition_task(1)
        assert t1.frame.capture_id != t2.frame.capture_id

    def test_recognition_task_resolution_from_config(self):
        config = CoICConfig()
        config.recognition.resolution = "1080p"
        dep = CoICDeployment(config)
        assert dep.recognition_task(0).frame.resolution.name == "1080p"

    def test_model_load_task_from_catalog(self):
        dep = CoICDeployment()
        task = dep.model_load_task(2)
        assert task.digest == dep.catalog[2][0]
        with pytest.raises(KeyError):
            dep.model_load_task(999)

    def test_panorama_task_uses_vr_config(self):
        config = CoICConfig()
        config.vr.resolution = "8k"
        dep = CoICDeployment(config)
        task = dep.panorama_task(0, 1, 0)
        assert task.panorama.resolution.name == "8k"


class TestRunHelpers:
    def test_run_tasks_sequential_spacing(self):
        dep = CoICDeployment()
        tasks = [dep.recognition_task(i) for i in range(2)]
        records = dep.run_tasks(dep.local_clients[0], tasks, spacing_s=5.0)
        assert len(records) == 2
        gap = records[1].start_s - records[0].end_s
        assert gap == pytest.approx(5.0)

    def test_run_concurrent_respects_delays(self):
        dep = CoICDeployment(n_clients=2)
        plan = [
            (0.0, dep.local_clients[0], dep.recognition_task(0)),
            (2.0, dep.local_clients[1], dep.recognition_task(1)),
        ]
        dep.run_concurrent(plan)
        starts = sorted(r.start_s for r in dep.recorder.records)
        assert starts[0] == pytest.approx(0.0)
        assert starts[1] == pytest.approx(2.0)
