"""Tests for cache-affinity cooperation (PR 4).

Covers the incremental affinity sketch and cache summaries, the
affinity load balancer (including its decision-identity with the
least-loaded balancer when no summary signal exists), staleness-bounded
summary gossip determinism, layer-cache pre-warm transport, and the
golden digest pinning ``offload="least_loaded"`` byte-identical to the
PR 3 balancer.
"""

import hashlib

import numpy as np
import pytest

from repro.core.cache import CacheSummary, ICCache
from repro.core.descriptors import HashDescriptor, VectorDescriptor
from repro.core.index import (
    AffinitySketch,
    SKETCH_DIM,
    SketchSummary,
    input_sketch,
)
from repro.core.layer_cache import LAYER_KIND_PREFIX, input_sketch as \
    layer_input_sketch
from repro.core.metrics import OUTCOME_HIT, OUTCOME_MISS
from repro.core.pipeline import AffinityLoadBalancer, PeerLoadBalancer
from repro.core.scenario import (
    ClientSpec,
    EdgePolicySpec,
    EdgeSpec,
    InterEdgeLinkSpec,
    ScenarioSpec,
    WarmupSpec,
)


def recorder_digest(recorder) -> str:
    """A byte-exact fingerprint of every record's observable fields."""
    blob = repr([(r.task_kind, r.outcome, r.user, r.start_s.hex(),
                  r.end_s.hex(), r.correct) for r in recorder.records])
    return hashlib.sha256(blob.encode()).hexdigest()


def vec(seed: int, dim: int = 128) -> np.ndarray:
    rng = np.random.Generator(np.random.PCG64(seed))
    v = rng.normal(size=dim)
    return v / np.linalg.norm(v)


# -- sketch + summary ---------------------------------------------------------


class TestAffinitySketch:
    def test_signature_deterministic_across_instances(self):
        a, b = AffinitySketch(), AffinitySketch()
        v = vec(1)
        assert a.signature(v) == b.signature(v)
        # Folding is dim-agnostic: the 32-d input sketch of a vector and
        # the vector itself land in the same bucket (block-average +
        # sign bits are scale/normalization invariant).
        assert a.signature(input_sketch(v)) == a.signature(v)

    def test_add_remove_roundtrip(self):
        sketch = AffinitySketch()
        vs = [vec(i) for i in range(10)]
        for v in vs:
            sketch.add(v)
        assert len(sketch) == 10
        summary = sketch.summary()
        assert summary.n == 10
        assert sum(summary.counts.values()) == 10
        for v in vs:
            sketch.remove(v)
        assert len(sketch) == 0
        assert sketch.summary().counts == {}

    def test_summary_is_a_snapshot(self):
        sketch = AffinitySketch()
        sketch.add(vec(1))
        summary = sketch.summary()
        sketch.add(vec(2))
        assert summary.n == 1  # unchanged by later inserts

    def test_expected_hit_same_and_different_content(self):
        sketch = AffinitySketch()
        base = vec(42)
        sketch.add(base)
        summary = sketch.summary()
        # Identical vector: certain bucket match.
        assert summary.expected_hit(sketch.signature(base)) == 1.0
        assert SketchSummary(n=0, counts={}).expected_hit(0) == 0.0

    def test_expected_hit_radius(self):
        bits = AffinitySketch().n_bits
        summary = SketchSummary(n=4, counts={0b0: 1, 0b1: 1, 0b11: 1,
                                             0b111: 1}, n_bits=bits)
        assert summary.expected_hit(0b0, radius=0) == pytest.approx(0.25)
        assert summary.expected_hit(0b0, radius=1) == pytest.approx(0.5)
        assert summary.expected_hit(0b0, radius=2) == pytest.approx(0.75)

    def test_size_bytes_tracks_buckets(self):
        assert SketchSummary(n=0, counts={}).size_bytes == 16
        assert SketchSummary(n=2, counts={1: 1, 2: 1}).size_bytes == 40


class TestCacheSummary:
    def test_cache_maintains_sketches_incrementally(self):
        cache = ICCache(capacity_bytes=100_000)
        entries = [cache.insert(
            VectorDescriptor(kind="recognition", vector=vec(i)),
            f"r{i}", 100) for i in range(5)]
        cache.insert(HashDescriptor("model_load", "ab"), "m", 100)
        summary = cache.summary()
        assert summary.kinds == {"recognition": 5, "model_load": 1}
        assert set(summary.sketches) == {"recognition"}
        assert summary.sketches["recognition"].n == 5
        # Drops (explicit or eviction) shrink the sketch too.
        cache.remove(entries[0])
        assert cache.summary().sketches["recognition"].n == 4

    def test_eviction_updates_sketch(self):
        cache = ICCache(capacity_bytes=300)  # room for 3 x 100 B
        for i in range(5):
            cache.insert(VectorDescriptor(kind="recognition", vector=vec(i)),
                         f"r{i}", 100, now=float(i))
        assert len(cache) == 3
        assert cache.summary().sketches["recognition"].n == 3

    def test_expected_hit_routes_by_kind(self):
        cache = ICCache(capacity_bytes=100_000)
        v = vec(7)
        cache.insert(VectorDescriptor(kind="recognition", vector=v),
                     "r", 100)
        summary = cache.summary()
        sig = AffinitySketch().signature(v)
        assert summary.expected_hit("recognition", sig) == 1.0
        assert summary.expected_hit("panorama", sig) == 0.0

    def test_insert_batch_maintains_sketch(self):
        cache = ICCache(capacity_bytes=100_000)
        items = [(VectorDescriptor(kind="recognition", vector=vec(i)),
                  f"r{i}", 100) for i in range(6)]
        cache.insert_batch(items)
        assert cache.summary().sketches["recognition"].n == 6

    def test_summary_exclude_prefix_drops_layer_kinds(self):
        cache = ICCache(capacity_bytes=100_000)
        cache.insert(VectorDescriptor(kind="recognition", vector=vec(1)),
                     "r", 100)
        cache.insert(VectorDescriptor(kind=f"{LAYER_KIND_PREFIX}conv1",
                                      vector=vec(2, dim=SKETCH_DIM)),
                     ("activation", "conv1"), 200)
        full = cache.summary()
        assert set(full.kinds) == {"recognition", "layer:conv1"}
        gossip = cache.summary(exclude_prefix=LAYER_KIND_PREFIX)
        assert set(gossip.kinds) == {"recognition"}
        assert set(gossip.sketches) == {"recognition"}
        assert gossip.size_bytes < full.size_bytes


class TestHottestFilters:
    def _cache(self):
        cache = ICCache(capacity_bytes=100_000)
        cache.insert(HashDescriptor("model_load", "aa"), "m", 100)
        cache.insert(VectorDescriptor(kind=f"{LAYER_KIND_PREFIX}conv1",
                                      vector=vec(1, dim=SKETCH_DIM)),
                     ("activation", "conv1"), 200)
        cache.insert(VectorDescriptor(kind="recognition", vector=vec(2)),
                     "r", 100)
        return cache

    def test_kind_prefix_selects_namespace(self):
        cache = self._cache()
        layers = cache.hottest(10, kind_prefix=LAYER_KIND_PREFIX)
        assert [e.descriptor.kind for e in layers] == ["layer:conv1"]

    def test_exclude_prefix_drops_namespace(self):
        cache = self._cache()
        rest = cache.hottest(10, exclude_prefix=LAYER_KIND_PREFIX)
        assert {e.descriptor.kind for e in rest} == \
            {"model_load", "recognition"}


# -- the affinity balancer ----------------------------------------------------


class _FakeEdge:
    def __init__(self, load, summaries=None):
        self.load = load
        self.peer_summaries = summaries or {}


def _summary_holding(v) -> CacheSummary:
    sketch = AffinitySketch()
    sketch.add(v)
    return CacheSummary(kinds={"recognition": 1},
                        sketches={"recognition": sketch.summary()})


class TestAffinityLoadBalancer:
    def test_empty_summaries_identical_to_least_loaded(self):
        # Decision identity across a spread of load configurations: with
        # no gossip received, affinity pick == least-loaded pick.
        key = vec(3)
        for loads in ((5, 2, 1), (5, 1, 2), (2, 2, 2), (1, 4, 5),
                      (0, 0, 0), (4, 3, 3)):
            affine = AffinityLoadBalancer(margin=1)
            least = PeerLoadBalancer(margin=1)
            for balancer in (affine, least):
                balancer.register("a", _FakeEdge(loads[0]), ["b", "c"])
                balancer.register("b", _FakeEdge(loads[1]), ["a"])
                balancer.register("c", _FakeEdge(loads[2]), ["a"])
            assert affine.pick("a", key=key) == least.pick("a"), loads
            assert affine.pick("a", key=None) == least.pick("a"), loads

    def test_prefers_the_neighbour_that_will_hit(self):
        content = vec(9)
        asking = _FakeEdge(5, summaries={"warm": _summary_holding(content)})
        balancer = AffinityLoadBalancer(margin=1)
        balancer.register("a", asking, ["cold", "warm"])
        balancer.register("cold", _FakeEdge(0), ["a"])
        balancer.register("warm", _FakeEdge(1), ["a"])
        # Least-loaded would pick "cold" (registration order + load);
        # affinity routes to the summary that predicts a hit.
        assert PeerLoadBalancer(margin=1) is not None
        assert balancer.pick("a", key=content) == "warm"
        assert balancer.affinity_picks == 1
        # Unrelated content scores zero everywhere: least-loaded fallback.
        assert balancer.pick("a", key=vec(1000)) == "cold"
        assert balancer.fallback_picks == 1

    def test_margin_still_gates_eligibility(self):
        content = vec(9)
        asking = _FakeEdge(2, summaries={"warm": _summary_holding(content)})
        balancer = AffinityLoadBalancer(margin=2)
        balancer.register("a", asking, ["warm"])
        balancer.register("warm", _FakeEdge(1), ["a"])
        # warm holds the content but 1 + margin(2) > own(2): ineligible.
        assert balancer.pick("a", key=content) is None

    def test_headroom_breaks_equal_hit_probability(self):
        content = vec(9)
        asking = _FakeEdge(9, summaries={
            "busy": _summary_holding(content),
            "idle": _summary_holding(content)})
        balancer = AffinityLoadBalancer(margin=0)
        balancer.register("a", asking, ["busy", "idle"])
        balancer.register("busy", _FakeEdge(3), ["a"])
        balancer.register("idle", _FakeEdge(0), ["a"])
        assert balancer.pick("a", key=content) == "idle"


# -- deployment-level behaviour ----------------------------------------------


@pytest.fixture
def affinity_dep(make_spec, make_deployment):
    """Deployment factory for the 3-edge affinity scenario: hot
    ``edge0`` (all the clients), idle ``edge1``/``edge2``, warm-up on
    ``warm_edges``, full metro mesh, standard 2-worker test config."""

    def factory(offload="affinity", refresh=1.0, warm_edges=("edge2",),
                seed=0):
        spec = make_spec(
            clients=(("m0", "m1", "m2"), (), ()),
            warmup=WarmupSpec(classes=(1, 2, 3), edges=tuple(warm_edges)),
            policy=EdgePolicySpec(offload=offload, queue_limit=0,
                                  offload_margin=0,
                                  summary_refresh_s=refresh))
        return make_deployment(spec=spec, seed=seed, edge_workers=2)

    return factory


class TestSummaryGossip:
    def test_no_summaries_before_the_first_interval(self, affinity_dep):
        dep = affinity_dep(refresh=5.0)
        dep.run_for(4.9)
        assert dep.summaries_sent == 0
        assert all(e.peer_summaries == {} for e in dep.edges)
        dep.run_for(0.2)
        # One round: every edge pushed to both neighbours.
        assert dep.summaries_sent == 6
        assert all(e.summaries_received == 2 for e in dep.edges)

    def test_gossiped_summary_reflects_warmup(self, affinity_dep):
        dep = affinity_dep(refresh=1.0)
        dep.run_for(1.2)
        view = dep.edges[0].peer_summaries
        assert set(view) == {"edge1", "edge2"}
        assert view["edge2"].kinds == {"recognition": 3}
        assert view["edge1"].kinds == {}

    def test_gossip_only_runs_for_affinity_policies(self, affinity_dep):
        dep = affinity_dep(offload="least_loaded")
        dep.run_for(3.0)
        assert dep.summaries_sent == 0

    def test_gossip_and_offload_are_deterministic(self, affinity_dep):
        def one_run():
            dep = affinity_dep()
            tasks = [dep.recognition_task(cls, viewpoint=0.1 * i,
                                          user="m0", seq=i)
                     for i, cls in enumerate((1, 2, 3, 9, 1, 2))]
            # Let one gossip round land, then drive traffic.
            dep.run_for(1.5)
            for client, task in zip(dep.all_clients * 2, tasks):
                dep.run_tasks(client, [task])
            dep.run_for(2.0)
            return (recorder_digest(dep.recorder), dep.summaries_sent,
                    tuple(e.summaries_received for e in dep.edges),
                    dep.balancer.affinity_picks)

        assert one_run() == one_run()

    def test_affinity_offload_targets_the_warm_edge(self, affinity_dep):
        dep = affinity_dep()
        dep.run_for(1.5)  # summaries in place
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(2, viewpoint=0.1)])[0]
        assert record.outcome == OUTCOME_HIT
        assert record.edge == "edge2"
        assert dep.balancer.affinity_picks >= 1

    def test_before_gossip_affinity_falls_back_to_least_loaded(
            self, affinity_dep):
        dep = affinity_dep()
        # No gossip yet: pick must match least-loaded (edge1, first
        # registered among equally idle neighbours) — a miss there.
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(2, viewpoint=0.1)])[0]
        assert record.outcome == OUTCOME_MISS
        assert record.edge == "edge1"


class TestSummaryPiggyback:
    """``EdgePolicySpec.summary_piggyback``: cooperation traffic that
    already crosses the metro graph refreshes affinity views between
    gossip rounds (PR 10 staleness fix).  Off by default — the pinned
    digests in this file and ``test_cluster.py`` guard that not one
    message byte changes."""

    def piggyback_dep(self, make_spec, make_deployment, *, piggyback,
                      **policy_kwargs):
        spec = make_spec(
            clients=(("m0", "m1", "m2"), (), ()),
            warmup=WarmupSpec(classes=(1, 2, 3), edges=("edge2",)),
            policy=EdgePolicySpec(offload="affinity", queue_limit=0,
                                  offload_margin=0,
                                  summary_refresh_s=1000.0,
                                  summary_piggyback=piggyback,
                                  **policy_kwargs))
        return make_deployment(spec=spec, edge_workers=2)

    def test_offload_reply_refreshes_the_peer_view(self, make_spec,
                                                   make_deployment):
        # Gossip period is effectively infinite: the only way edge0 can
        # learn anything is the summary riding the offload reply.
        dep = self.piggyback_dep(make_spec, make_deployment,
                                 piggyback=True)
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(2, viewpoint=0.1)])[0]
        assert record.edge == "edge1"  # least-loaded fallback, cold view
        hot = dep.edge_by_name["edge0"]
        assert dep.summaries_sent == 0  # no periodic round fired
        assert hot.summaries_received == 1
        assert set(hot.peer_summaries) == {"edge1"}
        assert isinstance(hot.peer_summaries["edge1"], CacheSummary)

    def test_piggyback_off_leaves_the_view_stale(self, make_spec,
                                                 make_deployment):
        # Same offload, flag off: the reply carries nothing and edge0
        # stays blind until the (never-arriving) gossip round.
        dep = self.piggyback_dep(make_spec, make_deployment,
                                 piggyback=False)
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(2, viewpoint=0.1)])[0]
        assert record.edge == "edge1"
        hot = dep.edge_by_name["edge0"]
        assert hot.summaries_received == 0
        assert hot.peer_summaries == {}

    def test_prewarm_ack_pushes_the_target_summary(self, make_spec,
                                                   make_deployment):
        # A pre-warm push is answered with the *target's* summary, so
        # the old edge's view of where it just shipped entries is fresh
        # before the handoff completes.
        dep = self.piggyback_dep(make_spec, make_deployment,
                                 piggyback=True, prewarm_top_k=2)
        # Warm edge2 hands entries to edge1 ahead of a handoff.
        assert dep.prewarm("edge2", "edge1", client_name="m0")
        dep.run_for(10.0)
        warm = dep.edge_by_name["edge2"]
        assert "edge1" in warm.peer_summaries
        assert warm.summaries_received >= 1
        assert dep.summaries_sent == 0

    def test_federated_reply_carries_the_peer_summary(self, make_spec,
                                                      make_deployment):
        import dataclasses as dc

        spec = dc.replace(
            make_spec(clients=(("m0",), ()),
                      warmup=WarmupSpec(classes=(1, 2, 3),
                                        edges=("edge1",)),
                      policy=EdgePolicySpec(summary_piggyback=True)),
            federate=True)
        dep = make_deployment(spec=spec)
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(2, viewpoint=0.1)])[0]
        assert record.outcome == OUTCOME_HIT  # served by edge1's cache
        probing = dep.edge_by_name["edge0"]
        assert "edge1" in probing.peer_summaries
        assert probing.peer_summaries["edge1"].kinds == {"recognition": 3}
        assert probing.summaries_received >= 1


GOLDEN_LEAST_LOADED = \
    "1c4e63029de4b75904209743c2d92af071f7abfcb26027e70f334c0ac111760e"


class TestLeastLoadedGoldenDigest:
    def test_least_loaded_byte_identical_to_pr3_balancer(self):
        """offload="least_loaded" reproduces the PR 3 balancer exactly.

        Digest captured at commit 9e69ae5 (pre-affinity) on this
        workload: the rush-hour scenario with the offload policy, 41
        peer offloads among 418 records.
        """
        from repro.eval.experiments.mobility_exp import drive_scenario
        from repro.eval.experiments.overload_exp import (
            build_rush_hour,
            policy_spec,
        )

        dep = build_rush_hour(seed=3, policy=policy_spec("offload"),
                              hot_clients=8, duration_s=60.0,
                              mean_dwell_s=15.0)
        drive_scenario(dep, 60.0, request_interval_s=0.25)
        assert sum(e.offloaded_out for e in dep.edges) > 0
        assert recorder_digest(dep.recorder) == GOLDEN_LEAST_LOADED


# -- policy/spec knobs --------------------------------------------------------


class TestPolicyKnobs:
    def test_round_trip_with_affinity_fields(self):
        policy = EdgePolicySpec(offload="affinity", queue_limit=3,
                                offload_margin=1, summary_refresh_s=2.5,
                                prewarm_top_k=7, prewarm_layers=4)
        assert EdgePolicySpec.from_dict(policy.to_dict()) == policy

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgePolicySpec(offload="warmest")
        with pytest.raises(ValueError):
            EdgePolicySpec(summary_refresh_s=0.0)
        with pytest.raises(ValueError):
            EdgePolicySpec(prewarm_layers=-1)

    def test_affinity_gates_admission(self):
        assert EdgePolicySpec(offload="affinity").gates_admission

    def test_edge_cache_mb_round_trip_and_validation(self):
        edge = EdgeSpec(name="e", cache_mb=0.5)
        assert EdgeSpec.from_dict(edge.to_dict()) == edge
        assert EdgeSpec.from_dict({"name": "e"}).cache_mb is None
        with pytest.raises(ValueError):
            EdgeSpec(name="e", cache_mb=0.0)

    def test_cache_mb_overrides_deployment_capacity(self, make_deployment):
        spec = ScenarioSpec(edges=(EdgeSpec(name="big", cache_mb=1.0),
                                   EdgeSpec(name="small", cache_mb=0.01)))
        dep = make_deployment(spec=spec, edge_workers=2)
        assert dep.cache_by_name["big"].capacity_bytes == 1_000_000
        assert dep.cache_by_name["small"].capacity_bytes == 10_000

    def test_clients_attach_sketch_only_for_affinity(self, affinity_dep):
        dep = affinity_dep()
        assert all(c.attach_sketch for c in dep.all_clients)
        dep = affinity_dep(offload="least_loaded")
        assert not any(c.attach_sketch for c in dep.all_clients)


# -- layer-cache transport ----------------------------------------------------


def layer_spec(prewarm_layers=4, prewarm_top_k=2):
    return ScenarioSpec(
        edges=(EdgeSpec(name="edge0", clients=(ClientSpec(name="m0"),)),
               EdgeSpec(name="edge1")),
        inter_edge=(InterEdgeLinkSpec(a="edge0", b="edge1"),),
        policy=EdgePolicySpec(prewarm_top_k=prewarm_top_k,
                              prewarm_layers=prewarm_layers))


class TestLayerPrewarmTransport:
    def test_layer_entries_ride_the_prewarm_push(self, make_deployment):
        dep = make_deployment(spec=layer_spec(), edge_workers=2)
        manager = dep.layer_managers["edge0"]
        sketch = layer_input_sketch(dep.space.observe(5, 0.0).vector)
        manager.insert(sketch, now=0.0)
        assert dep.prewarm("edge0", "edge1", client_name="m0")
        dep.run_for(5.0)
        assert dep.prewarm_layers_pushed == 4
        event = dep.prewarm_log[0]
        assert event.layer_entries == 4
        assert event.pushed == 0  # no result entries existed yet
        # The push paid real activation bytes, not a token size.
        layer_bytes = sum(
            e.size_bytes for e in dep.cache_by_name["edge1"].entries())
        assert event.size_bytes == 256 + layer_bytes
        assert dep.edges[1].prewarm_received == 4
        # The destination can now resume mid-network for this input.
        plan = dep.layer_managers["edge1"].plan(sketch, now=dep.env.now)
        assert plan.resume_after is not None

    def test_layer_managers_absent_without_the_policy(self,
                                                       make_deployment):
        dep = make_deployment(spec=layer_spec(prewarm_layers=0),
                              edge_workers=2)
        assert dep.layer_managers == {}

    def test_result_prewarm_excludes_layer_entries(self, make_deployment):
        dep = make_deployment(spec=layer_spec(prewarm_layers=0,
                                              prewarm_top_k=5),
                              edge_workers=2)
        # prewarm_top_k only: layer entries present in the cache must
        # not consume the result budget.
        cache = dep.cache_by_name["edge0"]
        cache.insert(VectorDescriptor(kind=f"{LAYER_KIND_PREFIX}conv1",
                                      vector=vec(1, dim=SKETCH_DIM)),
                     ("activation", "conv1"), 500)
        cache.insert(VectorDescriptor(kind="recognition", vector=vec(2)),
                     "r", 100)
        assert dep.prewarm("edge0", "edge1")
        dep.run_for(5.0)
        assert dep.prewarm_pushed == 1
        assert dep.prewarm_layers_pushed == 0
        kinds = {e.descriptor.kind
                 for e in dep.cache_by_name["edge1"].entries()}
        assert kinds == {"recognition"}

    def test_sync_federation_layer_switch(self, make_deployment):
        dep = make_deployment(spec=layer_spec(), edge_workers=2)
        manager = dep.layer_managers["edge0"]
        sketch = layer_input_sketch(dep.space.observe(5, 0.0).vector)
        manager.insert(sketch, now=0.0)
        assert dep.sync_federation() == 0  # layers excluded by default
        assert len(dep.cache_by_name["edge1"]) == 0
        copied = dep.sync_federation(include_layers=True)
        assert copied == len(manager.tap_layers)
        assert all(e.descriptor.kind.startswith(LAYER_KIND_PREFIX)
                   for e in dep.cache_by_name["edge1"].entries())
