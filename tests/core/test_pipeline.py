"""Tests for repro.core.pipeline (stages, overload layer, pre-warm).

Includes the pipeline golden-digest suite: the explicitly assembled
default stage chain must reproduce the pre-refactor ``EdgeNode``
byte-for-byte on the CoIC and federated seed workloads (same digests as
``tests/core/test_cluster.py``, captured on commit cb4e7b1).
"""

import hashlib

import pytest

from repro.core import CoICConfig, CoICDeployment
from repro.core.cache import ICCache
from repro.core.cluster import ClusterDeployment
from repro.core.descriptors import HashDescriptor
from repro.core.federation import FederatedDeployment
from repro.core.metrics import OUTCOME_SHED
from repro.core.pipeline import (
    AdmissionControlStage,
    AdmitStage,
    ClassifyStage,
    LookupStage,
    PeerLoadBalancer,
    Pipeline,
    RespondStage,
    ResolveStage,
    build_pipeline,
    default_pipeline,
)
from repro.core.scenario import (
    EdgePolicySpec,
    MobilitySpec,
    ScenarioSpec,
)


def recorder_digest(recorder) -> str:
    """A byte-exact fingerprint of every record's observable fields."""
    blob = repr([(r.task_kind, r.outcome, r.user, r.start_s.hex(),
                  r.end_s.hex(), r.correct) for r in recorder.records])
    return hashlib.sha256(blob.encode()).hexdigest()


# Digests captured on the pre-refactor (pre-pipeline) EdgeNode at
# commit cb4e7b1, for the exact workloads below (identical to the
# seed-equivalence suite in test_cluster.py).
GOLDEN_SINGLE = \
    "eca8545032b4bafc20bd01be45354bfe7287f1289316cff25b6c97cce4a2a0a4"
GOLDEN_FEDERATED = \
    "302d95e0068590dd121eb8c06a411f521eb61f4c5134872ed4f809766fc13a73"


def explicit_default_pipeline() -> Pipeline:
    return Pipeline([AdmitStage(), ClassifyStage(), LookupStage(),
                     ResolveStage(), RespondStage()])


class TestGoldenDigests:
    """The default chain reproduces the pre-refactor edge byte-identically."""

    def test_explicit_chain_matches_pre_refactor_single_edge(self):
        cfg = CoICConfig(seed=3)
        cfg.network.wifi_mbps = 100
        cfg.network.backhaul_mbps = 10
        dep = CoICDeployment(cfg, n_clients=2)
        # Hand-assembled stage list, not the default_pipeline() shortcut:
        # proves the chain is what reproduces the behaviour.
        dep.edge.pipeline = explicit_default_pipeline()
        dep.run_tasks(dep.clients[0],
                      [dep.recognition_task(5, viewpoint=-0.2)])
        dep.run_tasks(dep.clients[1],
                      [dep.recognition_task(5, viewpoint=0.2)])
        dep.run_tasks(dep.clients[0], [dep.model_load_task(0)])
        dep.env.run()
        dep.run_tasks(dep.clients[1], [dep.model_load_task(0)])
        dep.run_tasks(dep.clients[0], [dep.panorama_task(1, 2)])
        dep.run_tasks(dep.origin_clients[0], [dep.recognition_task(9)])
        dep.run_tasks(dep.local_clients[1], [dep.recognition_task(4)])
        dep.run_concurrent([
            (0.0, dep.clients[0], dep.recognition_task(5, viewpoint=0.0)),
            (0.001, dep.clients[1], dep.recognition_task(5, viewpoint=0.1)),
        ])
        assert recorder_digest(dep.recorder) == GOLDEN_SINGLE

    def test_explicit_chain_matches_pre_refactor_federated(self):
        cfg = CoICConfig(seed=7)
        cfg.network.wifi_mbps = 100
        cfg.network.backhaul_mbps = 10
        fed = FederatedDeployment(cfg, n_edges=3, clients_per_edge=2,
                                  metro_delay_ms=2.0)
        for edge in fed.edges:
            edge.pipeline = explicit_default_pipeline()
        fed.run_tasks(fed.clients[0][0], [fed.model_load_task(0)])
        fed.env.run()
        fed.run_tasks(fed.clients[1][0], [fed.model_load_task(0)])
        fed.run_tasks(fed.clients[0][1],
                      [fed.recognition_task(7, viewpoint=-0.2)])
        fed.env.run()
        fed.run_tasks(fed.clients[2][1],
                      [fed.recognition_task(7, viewpoint=0.2)])
        fed.run_tasks(fed.clients[2][0], [fed.panorama_task(0, 4)])
        fed.env.run()
        fed.run_tasks(fed.clients[1][1], [fed.panorama_task(0, 4)])
        assert recorder_digest(fed.recorder) == GOLDEN_FEDERATED


class TestPipelineShape:
    def test_default_stage_order(self):
        assert default_pipeline().stage_names == \
            ["admit", "classify", "lookup", "resolve", "respond"]

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([])

    def test_replace_swaps_one_stage(self):
        policy = EdgePolicySpec(admission="shed")
        pipeline = default_pipeline().replace(
            "admit", AdmissionControlStage(policy))
        assert pipeline.stage_names == \
            ["admit", "classify", "lookup", "resolve", "respond"]
        assert isinstance(pipeline.stages[0], AdmissionControlStage)

    def test_replace_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            default_pipeline().replace("nope", AdmitStage())

    def test_build_pipeline_inert_policy_keeps_default_admit(self):
        pipeline = build_pipeline(EdgePolicySpec())
        assert type(pipeline.stages[0]) is AdmitStage
        assert type(build_pipeline(None).stages[0]) is AdmitStage

    def test_build_pipeline_active_policy_installs_admission(self):
        pipeline = build_pipeline(EdgePolicySpec(admission="shed"))
        assert isinstance(pipeline.stages[0], AdmissionControlStage)


class TestAdmissionControl:
    def test_shed_refuses_past_the_queue_limit(self, make_deployment):
        # queue_limit=0: the edge is "overloaded" from the first request,
        # so every recognition request is refused.
        dep = make_deployment(seed=1,
                              policy=EdgePolicySpec(admission="shed",
                                                    queue_limit=0))
        records = dep.run_tasks(dep.client_by_name["m0"],
                                [dep.recognition_task(1),
                                 dep.recognition_task(2)])
        assert [r.outcome for r in records] == [OUTCOME_SHED, OUTCOME_SHED]
        assert dep.edges[0].shed_count == 2
        assert records[0].edge == "edge0"
        # Shed responses return fast: the latency is dominated by the
        # frame upload — no extraction queueing, no cloud round trip.
        assert records[0].latency_s < 0.5

    def test_shed_does_not_gate_hash_tasks(self, make_deployment):
        dep = make_deployment(seed=1,
                              policy=EdgePolicySpec(admission="shed",
                                                    queue_limit=0))
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.model_load_task(0)])[0]
        assert record.outcome == "miss"
        assert dep.edges[0].shed_count == 0

    def test_shed_outcome_not_counted_in_hit_ratio(self, make_deployment):
        dep = make_deployment(seed=1,
                              policy=EdgePolicySpec(admission="shed",
                                                    queue_limit=0))
        dep.run_tasks(dep.client_by_name["m0"], [dep.recognition_task(1)])
        assert dep.recorder.hit_ratio() == 0.0
        assert len(dep.recorder.select(outcome=OUTCOME_SHED)) == 1

    def test_redirect_relays_to_cloud_without_caching(self,
                                                      make_deployment):
        dep = make_deployment(seed=1,
                              policy=EdgePolicySpec(admission="redirect",
                                                    queue_limit=0))
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(3)])[0]
        assert record.outcome == "miss"
        assert record.correct is True
        assert dep.edges[0].redirect_count == 1
        # No extraction, no insert: the cache never saw the request.
        assert len(dep.caches[0]) == 0

    def test_redirect_without_input_asks_for_the_frame_first(
            self, make_deployment):
        # Descriptor-only clients never uploaded the frame, so a
        # redirecting edge cannot relay it: the need_input two-phase
        # exchange runs first and the re-send (frame attached) is what
        # gets redirected.
        cfg = CoICConfig(seed=1)
        cfg.network.wifi_mbps = 100
        cfg.network.backhaul_mbps = 10
        cfg.recognition.descriptor_source = "client"
        cfg.recognition.attach_input = False
        dep = make_deployment(config=cfg,
                              policy=EdgePolicySpec(admission="redirect",
                                                    queue_limit=0))
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(4)])[0]
        assert record.outcome == "miss"
        assert record.correct is True
        # Exactly one redirect: the descriptor-only first round got
        # need_input, only the frame-attached re-send was relayed.
        assert dep.edges[0].redirect_count == 1
        assert len(dep.caches[0]) == 0

    def test_admission_accepts_below_the_limit(self, make_deployment):
        dep = make_deployment(seed=1,
                              policy=EdgePolicySpec(admission="shed",
                                                    queue_limit=8))
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(1)])[0]
        assert record.outcome == "miss"
        assert dep.edges[0].shed_count == 0

    def test_deadline_based_shed(self, make_deployment):
        # One worker, deadline 0.5 s, extraction ~0.84 s: the first
        # request runs, the second queues (backlog 0 at its admission),
        # the third sees backlog 1 -> estimated wait ~0.84 s > deadline.
        dep = make_deployment(seed=1, edge_workers=1,
                              clients=(("m0", "m1", "m2"), ("far0",)),
                              policy=EdgePolicySpec(admission="shed",
                                                    queue_limit=None,
                                                    deadline_s=0.5))
        dep.run_concurrent([
            (0.0, dep.client_by_name["m0"], dep.recognition_task(1)),
            (0.001, dep.client_by_name["m1"], dep.recognition_task(2)),
            (0.002, dep.client_by_name["m2"], dep.recognition_task(3)),
        ])
        assert dep.edges[0].shed_count == 1
        outcomes = [r.outcome for r in dep.recorder.records]
        assert outcomes.count(OUTCOME_SHED) == 1


class TestPeerOffload:
    def test_overloaded_edge_borrows_idle_neighbour(self, make_deployment):
        dep = make_deployment(seed=1,
                              policy=EdgePolicySpec(offload="least_loaded",
                                                    queue_limit=0,
                                                    offload_margin=0))
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(5)])[0]
        # Served, not refused — and by the neighbour, which the
        # serving-edge tag proves.
        assert record.outcome == "miss"
        assert record.correct is True
        assert record.edge == "edge1"
        assert dep.edges[0].offloaded_out == 1
        assert dep.edges[1].offloaded_in == 1
        # The work landed in the neighbour's cache.
        assert len(dep.caches[1]) == 1
        assert len(dep.caches[0]) == 0

    def test_offloaded_result_hits_on_the_neighbour(self, make_deployment):
        dep = make_deployment(seed=1,
                              policy=EdgePolicySpec(offload="least_loaded",
                                                    queue_limit=0,
                                                    offload_margin=0))
        first = dep.run_tasks(dep.client_by_name["m0"],
                              [dep.recognition_task(5, viewpoint=-0.1)])[0]
        dep.env.run()
        second = dep.run_tasks(dep.client_by_name["m1"],
                               [dep.recognition_task(5, viewpoint=0.1)])[0]
        assert first.outcome == "miss"
        assert second.outcome == "hit"
        assert second.edge == "edge1"

    def test_no_offload_without_inter_edge_link(self, make_deployment):
        dep = make_deployment(seed=1, clients=(("m0",), ()),
                              inter_edge=False,
                              policy=EdgePolicySpec(offload="least_loaded",
                                                    queue_limit=0,
                                                    offload_margin=0))
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(1)])[0]
        # No backhaul neighbour: the request is admitted locally.
        assert record.outcome == "miss"
        assert record.edge == "edge0"
        assert dep.edges[0].offloaded_out == 0


class TestPeerLoadBalancer:
    class _FakeEdge:
        def __init__(self, load):
            self.load = load

    def test_picks_least_loaded_neighbour(self):
        balancer = PeerLoadBalancer(margin=1)
        balancer.register("a", self._FakeEdge(load=5), ["b", "c"])
        balancer.register("b", self._FakeEdge(load=2), ["a"])
        balancer.register("c", self._FakeEdge(load=1), ["a"])
        assert balancer.pick("a") == "c"

    def test_margin_hysteresis(self):
        balancer = PeerLoadBalancer(margin=3)
        balancer.register("a", self._FakeEdge(load=2), ["b"])
        balancer.register("b", self._FakeEdge(load=0), ["a"])
        assert balancer.pick("a") is None  # 0 + 3 > 2
        balancer = PeerLoadBalancer(margin=2)
        balancer.register("a", self._FakeEdge(load=2), ["b"])
        balancer.register("b", self._FakeEdge(load=0), ["a"])
        assert balancer.pick("a") == "b"  # 0 + 2 <= 2

    def test_inflight_offloads_count_against_target(self):
        balancer = PeerLoadBalancer(margin=1)
        balancer.register("a", self._FakeEdge(load=2), ["b"])
        balancer.register("b", self._FakeEdge(load=0), ["a"])
        assert balancer.pick("a") == "b"
        balancer.note_dispatch("b")
        balancer.note_dispatch("b")
        assert balancer.pick("a") is None  # pending pushed b to load 2
        balancer.note_done("b")
        balancer.note_done("b")
        assert balancer.pick("a") == "b"

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            PeerLoadBalancer(margin=-1)


class TestPrewarmSelection:
    def test_hottest_ranks_by_hits_then_recency(self):
        cache = ICCache(capacity_bytes=10_000)
        for i in range(4):
            cache.insert(HashDescriptor("model_load", f"d{i}"),
                         f"r{i}", 100, now=float(i))
        # d1 twice, d3 once; d0/d2 never.
        cache.lookup(HashDescriptor("model_load", "d1"), now=10.0)
        cache.lookup(HashDescriptor("model_load", "d1"), now=11.0)
        cache.lookup(HashDescriptor("model_load", "d3"), now=12.0)
        top = cache.hottest(2)
        assert [e.descriptor.digest for e in top] == ["d1", "d3"]
        # k larger than the cache: everything, hottest first.
        assert len(cache.hottest(99)) == 4
        assert cache.hottest(0) == []

    def test_hottest_filters_kind_and_expiry(self):
        cache = ICCache(capacity_bytes=10_000, ttl_s=5.0)
        cache.insert(HashDescriptor("model_load", "aa"), "r", 100, now=0.0)
        cache.insert(HashDescriptor("panorama", "bb"), "r", 100, now=8.0)
        cache.insert(HashDescriptor("model_load", "cc"), "r", 100, now=8.0)
        live = cache.hottest(10, now=9.0)  # "aa" expired at t=5
        assert {e.descriptor.digest for e in live} == {"bb", "cc"}
        only_models = cache.hottest(10, kind="model_load", now=9.0)
        assert [e.descriptor.digest for e in only_models] == ["cc"]


def prewarm_metro(prewarm_top_k: int):
    mobility = MobilitySpec(n_places=16, mean_dwell_s=8.0,
                            duration_s=60.0, handoff_latency_s=0.05)
    return ScenarioSpec.metro(
        n_edges=4, clients_per_edge=1, federate=False, mobility=mobility,
        policy=EdgePolicySpec(prewarm_top_k=prewarm_top_k))


class TestPredictiveHandoffPrewarm:
    def test_handoffs_push_hot_entries_ahead_of_the_client(self):
        from repro.eval.experiments.mobility_exp import drive_scenario

        cfg = CoICConfig(seed=0)
        cfg.network.wifi_mbps = 100
        cfg.network.backhaul_mbps = 10
        dep = ClusterDeployment(prewarm_metro(prewarm_top_k=4), config=cfg)
        drive_scenario(dep, 60.0, request_interval_s=2.0)
        assert dep.handoff_log, "scenario must hand off to test pre-warm"
        assert dep.prewarm_pushed > 0
        assert dep.prewarm_log
        for event in dep.prewarm_log:
            assert 0 < event.pushed <= 4
            assert event.src_edge != event.dst_edge

    def test_prewarm_disabled_pushes_nothing(self):
        from repro.eval.experiments.mobility_exp import drive_scenario

        cfg = CoICConfig(seed=0)
        cfg.network.wifi_mbps = 100
        cfg.network.backhaul_mbps = 10
        dep = ClusterDeployment(prewarm_metro(prewarm_top_k=0), config=cfg)
        drive_scenario(dep, 60.0, request_interval_s=2.0)
        assert dep.handoff_log
        assert dep.prewarm_pushed == 0
        assert dep.prewarm_log == []


class TestServingEdgeTag:
    def test_records_tag_the_serving_edge(self):
        dep = CoICDeployment(CoICConfig(seed=2), n_clients=1)
        dep.run_tasks(dep.clients[0], [dep.recognition_task(1),
                                       dep.model_load_task(0),
                                       dep.panorama_task(0, 1)])
        dep.env.run()
        assert all(r.edge == "edge" for r in dep.recorder.records)
        assert len(dep.recorder.select(edge="edge")) == 3
        assert dep.recorder.select(edge="elsewhere") == []
        per_edge = dep.recorder.per_edge_summaries()
        assert set(per_edge) == {"edge"}
        assert per_edge["edge"].n == 3

    def test_baseline_records_have_no_edge(self):
        dep = CoICDeployment(CoICConfig(seed=2), n_clients=1)
        dep.run_tasks(dep.origin_clients[0], [dep.recognition_task(1)])
        assert dep.recorder.records[-1].edge == ""


class TestEdgePolicySpec:
    def test_round_trip(self):
        policy = EdgePolicySpec(admission="shed", queue_limit=3,
                                deadline_s=1.5, offload="least_loaded",
                                offload_margin=1, prewarm_top_k=7)
        assert EdgePolicySpec.from_dict(policy.to_dict()) == policy

    def test_round_trip_through_scenario(self, make_spec):
        spec = make_spec(policy=EdgePolicySpec(admission="redirect"))
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt.policy == spec.policy
        assert ScenarioSpec.from_dict(
            ScenarioSpec.single_edge().to_dict()).policy is None

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgePolicySpec(admission="maybe")
        with pytest.raises(ValueError):
            EdgePolicySpec(offload="round_robin")
        with pytest.raises(ValueError):
            EdgePolicySpec(queue_limit=-1)
        with pytest.raises(ValueError):
            EdgePolicySpec(deadline_s=0.0)
        with pytest.raises(ValueError):
            EdgePolicySpec(prewarm_top_k=-2)

    def test_gates_admission(self):
        assert not EdgePolicySpec().gates_admission
        assert not EdgePolicySpec(prewarm_top_k=5).gates_admission
        assert EdgePolicySpec(admission="shed").gates_admission
        assert EdgePolicySpec(offload="least_loaded").gates_admission
