"""Unit tests for repro.core.cache (the edge IC cache)."""

import numpy as np
import pytest

from repro.core.cache import ICCache
from repro.core.descriptors import HashDescriptor, VectorDescriptor
from repro.core.policies import make_policy


def hd(digest, kind="model_load"):
    return HashDescriptor(kind, digest)


def vd(values, kind="recognition"):
    return VectorDescriptor(kind, np.asarray(values, dtype=np.float32))


class TestBasicOperations:
    def test_insert_lookup_hash(self):
        cache = ICCache(capacity_bytes=1000)
        cache.insert(hd("aa"), result="model-A", size_bytes=100)
        entry = cache.lookup(hd("aa"))
        assert entry is not None and entry.result == "model-A"
        assert cache.lookup(hd("bb")) is None

    def test_insert_lookup_vector_threshold(self):
        cache = ICCache(capacity_bytes=1000, default_threshold=0.1)
        cache.insert(vd([1, 0, 0]), result="obj", size_bytes=10)
        assert cache.lookup(vd([0.99, 0.05, 0])) is not None
        assert cache.lookup(vd([0, 1, 0])) is None

    def test_explicit_threshold_overrides_default(self):
        cache = ICCache(capacity_bytes=1000, default_threshold=0.0)
        cache.insert(vd([1, 0]), result="x", size_bytes=10)
        assert cache.lookup(vd([0.9, 0.1])) is None
        assert cache.lookup(vd([0.9, 0.1]), threshold=0.5) is not None

    def test_kind_namespaces_isolated(self):
        cache = ICCache(capacity_bytes=1000)
        cache.insert(hd("aa", kind="model_load"), "model", 10)
        assert cache.lookup(hd("aa", kind="panorama")) is None

    def test_hit_updates_entry_state(self):
        cache = ICCache(capacity_bytes=1000)
        cache.insert(hd("aa"), "x", 10, now=1.0)
        entry = cache.lookup(hd("aa"), now=5.0)
        assert entry.hits == 1
        assert entry.last_access == 5.0

    def test_stats_track_everything(self):
        cache = ICCache(capacity_bytes=1000)
        cache.insert(hd("aa"), "x", 10)
        cache.lookup(hd("aa"))
        cache.lookup(hd("ff"))
        stats = cache.stats
        assert (stats.insertions, stats.hits, stats.misses) == (1, 1, 1)
        assert stats.hit_ratio == 0.5

    def test_remove(self):
        cache = ICCache(capacity_bytes=1000)
        entry = cache.insert(hd("aa"), "x", 10)
        cache.remove(entry)
        assert cache.lookup(hd("aa")) is None
        with pytest.raises(KeyError):
            cache.remove(entry)

    def test_clear_preserves_stats(self):
        cache = ICCache(capacity_bytes=1000)
        cache.insert(hd("aa"), "x", 10)
        cache.lookup(hd("aa"))
        cache.clear()
        assert len(cache) == 0 and cache.size_bytes == 0
        assert cache.stats.hits == 1


class TestCapacity:
    def test_never_exceeds_capacity(self):
        cache = ICCache(capacity_bytes=250)
        for i in range(10):
            cache.insert(hd(f"{i:x}"), i, size_bytes=100)
            assert cache.size_bytes <= 250
        assert cache.stats.evictions > 0

    def test_eviction_is_lru_by_default(self):
        cache = ICCache(capacity_bytes=200)
        cache.insert(hd("aa"), "a", 100, now=0)
        cache.insert(hd("bb"), "b", 100, now=1)
        cache.lookup(hd("aa"), now=2)       # refresh aa
        cache.insert(hd("cc"), "c", 100, now=3)  # evicts bb
        assert cache.lookup(hd("aa"), now=4) is not None
        assert cache.lookup(hd("bb"), now=4) is None

    def test_oversized_entry_rejected(self):
        cache = ICCache(capacity_bytes=100)
        assert cache.insert(hd("aa"), "x", size_bytes=500) is None
        assert cache.stats.rejected == 1
        assert len(cache) == 0

    def test_eviction_removes_from_index(self):
        cache = ICCache(capacity_bytes=100)
        cache.insert(hd("aa"), "a", 100)
        cache.insert(hd("bb"), "b", 100)  # evicts aa
        assert cache.lookup(hd("aa")) is None
        assert cache.lookup(hd("bb")) is not None

    def test_policy_plugging(self):
        cache = ICCache(capacity_bytes=200, policy=make_policy("size"))
        cache.insert(hd("a1"), "s", 50)
        cache.insert(hd("b2"), "l", 150)
        cache.insert(hd("c3"), "n", 100)  # must evict the 150-byte one
        assert cache.lookup(hd("a1")) is not None
        assert cache.lookup(hd("b2")) is None


class TestTtl:
    def test_expired_entries_miss_and_purge(self):
        cache = ICCache(capacity_bytes=1000, ttl_s=10.0)
        cache.insert(hd("aa"), "x", 10, now=0.0)
        assert cache.lookup(hd("aa"), now=5.0) is not None
        assert cache.lookup(hd("aa"), now=15.0) is None
        assert len(cache) == 0
        assert cache.stats.expirations == 1

    def test_purge_expired_bulk(self):
        cache = ICCache(capacity_bytes=1000, ttl_s=10.0)
        for i in range(5):
            cache.insert(hd(f"{i:x}"), i, 10, now=float(i))
        assert cache.purge_expired(now=12.0) == 3  # inserted at 0,1,2
        assert len(cache) == 2

    def test_ttl_policy_propagates_cache_ttl(self):
        cache = ICCache(capacity_bytes=1000, policy=make_policy("ttl:5"))
        assert cache.ttl_s == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ICCache(capacity_bytes=0)
        with pytest.raises(ValueError):
            ICCache(capacity_bytes=10, ttl_s=0)


class TestLookupCost:
    def test_cost_for_unknown_kind_is_probe(self):
        cache = ICCache(capacity_bytes=100)
        assert cache.lookup_cost_s("recognition") > 0

    def test_vector_cost_grows(self):
        cache = ICCache(capacity_bytes=10_000_000)
        cache.insert(vd([1.0, 0.0]), "x", 10)
        small = cache.lookup_cost_s("recognition")
        for i in range(500):
            cache.insert(vd([float(i), 1.0]), i, 10)
        assert cache.lookup_cost_s("recognition") > small

    def test_lsh_index_spec_used_for_vectors(self):
        cache = ICCache(capacity_bytes=10_000, vector_index="lsh:4:8",
                        descriptor_dim=8)
        cache.insert(vd([1, 0, 0, 0, 0, 0, 0, 0]), "x", 10)
        from repro.core.index import LshIndex

        assert isinstance(cache.index_for("recognition"), LshIndex)
