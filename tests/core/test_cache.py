"""Unit tests for repro.core.cache (the edge IC cache)."""

import numpy as np
import pytest

from repro.core.cache import ICCache
from repro.core.descriptors import HashDescriptor, VectorDescriptor
from repro.core.policies import make_policy


def hd(digest, kind="model_load"):
    return HashDescriptor(kind, digest)


def vd(values, kind="recognition"):
    return VectorDescriptor(kind, np.asarray(values, dtype=np.float32))


class TestBasicOperations:
    def test_insert_lookup_hash(self):
        cache = ICCache(capacity_bytes=1000)
        cache.insert(hd("aa"), result="model-A", size_bytes=100)
        entry = cache.lookup(hd("aa"))
        assert entry is not None and entry.result == "model-A"
        assert cache.lookup(hd("bb")) is None

    def test_insert_lookup_vector_threshold(self):
        cache = ICCache(capacity_bytes=1000, default_threshold=0.1)
        cache.insert(vd([1, 0, 0]), result="obj", size_bytes=10)
        assert cache.lookup(vd([0.99, 0.05, 0])) is not None
        assert cache.lookup(vd([0, 1, 0])) is None

    def test_explicit_threshold_overrides_default(self):
        cache = ICCache(capacity_bytes=1000, default_threshold=0.0)
        cache.insert(vd([1, 0]), result="x", size_bytes=10)
        assert cache.lookup(vd([0.9, 0.1])) is None
        assert cache.lookup(vd([0.9, 0.1]), threshold=0.5) is not None

    def test_kind_namespaces_isolated(self):
        cache = ICCache(capacity_bytes=1000)
        cache.insert(hd("aa", kind="model_load"), "model", 10)
        assert cache.lookup(hd("aa", kind="panorama")) is None

    def test_hit_updates_entry_state(self):
        cache = ICCache(capacity_bytes=1000)
        cache.insert(hd("aa"), "x", 10, now=1.0)
        entry = cache.lookup(hd("aa"), now=5.0)
        assert entry.hits == 1
        assert entry.last_access == 5.0

    def test_stats_track_everything(self):
        cache = ICCache(capacity_bytes=1000)
        cache.insert(hd("aa"), "x", 10)
        cache.lookup(hd("aa"))
        cache.lookup(hd("ff"))
        stats = cache.stats
        assert (stats.insertions, stats.hits, stats.misses) == (1, 1, 1)
        assert stats.hit_ratio == 0.5

    def test_remove(self):
        cache = ICCache(capacity_bytes=1000)
        entry = cache.insert(hd("aa"), "x", 10)
        cache.remove(entry)
        assert cache.lookup(hd("aa")) is None
        with pytest.raises(KeyError):
            cache.remove(entry)

    def test_clear_preserves_stats(self):
        cache = ICCache(capacity_bytes=1000)
        cache.insert(hd("aa"), "x", 10)
        cache.lookup(hd("aa"))
        cache.clear()
        assert len(cache) == 0 and cache.size_bytes == 0
        assert cache.stats.hits == 1


class TestCapacity:
    def test_never_exceeds_capacity(self):
        cache = ICCache(capacity_bytes=250)
        for i in range(10):
            cache.insert(hd(f"{i:x}"), i, size_bytes=100)
            assert cache.size_bytes <= 250
        assert cache.stats.evictions > 0

    def test_eviction_is_lru_by_default(self):
        cache = ICCache(capacity_bytes=200)
        cache.insert(hd("aa"), "a", 100, now=0)
        cache.insert(hd("bb"), "b", 100, now=1)
        cache.lookup(hd("aa"), now=2)       # refresh aa
        cache.insert(hd("cc"), "c", 100, now=3)  # evicts bb
        assert cache.lookup(hd("aa"), now=4) is not None
        assert cache.lookup(hd("bb"), now=4) is None

    def test_oversized_entry_rejected(self):
        cache = ICCache(capacity_bytes=100)
        assert cache.insert(hd("aa"), "x", size_bytes=500) is None
        assert cache.stats.rejected == 1
        assert len(cache) == 0

    def test_eviction_removes_from_index(self):
        cache = ICCache(capacity_bytes=100)
        cache.insert(hd("aa"), "a", 100)
        cache.insert(hd("bb"), "b", 100)  # evicts aa
        assert cache.lookup(hd("aa")) is None
        assert cache.lookup(hd("bb")) is not None

    def test_policy_plugging(self):
        cache = ICCache(capacity_bytes=200, policy=make_policy("size"))
        cache.insert(hd("a1"), "s", 50)
        cache.insert(hd("b2"), "l", 150)
        cache.insert(hd("c3"), "n", 100)  # must evict the 150-byte one
        assert cache.lookup(hd("a1")) is not None
        assert cache.lookup(hd("b2")) is None


class TestTtl:
    def test_expired_entries_miss_and_purge(self):
        cache = ICCache(capacity_bytes=1000, ttl_s=10.0)
        cache.insert(hd("aa"), "x", 10, now=0.0)
        assert cache.lookup(hd("aa"), now=5.0) is not None
        assert cache.lookup(hd("aa"), now=15.0) is None
        assert len(cache) == 0
        assert cache.stats.expirations == 1

    def test_purge_expired_bulk(self):
        cache = ICCache(capacity_bytes=1000, ttl_s=10.0)
        for i in range(5):
            cache.insert(hd(f"{i:x}"), i, 10, now=float(i))
        assert cache.purge_expired(now=12.0) == 3  # inserted at 0,1,2
        assert len(cache) == 2

    def test_ttl_policy_propagates_cache_ttl(self):
        cache = ICCache(capacity_bytes=1000, policy=make_policy("ttl:5"))
        assert cache.ttl_s == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ICCache(capacity_bytes=0)
        with pytest.raises(ValueError):
            ICCache(capacity_bytes=10, ttl_s=0)


class TestLookupCost:
    def test_cost_for_unknown_kind_is_probe(self):
        cache = ICCache(capacity_bytes=100)
        assert cache.lookup_cost_s("recognition") > 0

    def test_vector_cost_grows(self):
        cache = ICCache(capacity_bytes=10_000_000)
        cache.insert(vd([1.0, 0.0]), "x", 10)
        small = cache.lookup_cost_s("recognition")
        for i in range(500):
            cache.insert(vd([float(i), 1.0]), i, 10)
        assert cache.lookup_cost_s("recognition") > small

    def test_lsh_index_spec_used_for_vectors(self):
        cache = ICCache(capacity_bytes=10_000, vector_index="lsh:4:8",
                        descriptor_dim=8)
        cache.insert(vd([1, 0, 0, 0, 0, 0, 0, 0]), "x", 10)
        from repro.core.index import LshIndex

        assert isinstance(cache.index_for("recognition"), LshIndex)


class TestLookupBatch:
    """lookup_batch must be indistinguishable from sequential lookups."""

    def _twin_caches(self, **kwargs):
        return (ICCache(capacity_bytes=10_000, **kwargs),
                ICCache(capacity_bytes=10_000, **kwargs))

    def test_matches_sequential_including_stats(self):
        batched, sequential = self._twin_caches(default_threshold=0.1)
        stored = [[1, 0, 0], [0, 1, 0], [0, 0, 1]]
        for cache in (batched, sequential):
            for i, v in enumerate(stored):
                cache.insert(vd(v), result=f"obj{i}", size_bytes=10)
        probes = [vd([0.99, 0.05, 0]), vd([0.6, 0.6, 0]),
                  vd([0, 0.02, 0.99]), vd([0, 1, 0])]
        got = batched.lookup_batch(probes, now=3.0)
        want = [sequential.lookup(p, now=3.0) for p in probes]
        assert [e and e.entry_id for e in got] == \
            [e and e.entry_id for e in want]
        assert [e and e.hits for e in got] == [e and e.hits for e in want]
        assert batched.stats == sequential.stats

    def test_mixed_kinds_one_call(self):
        cache = ICCache(capacity_bytes=10_000)
        cache.insert(vd([1, 0]), "vec-obj", 10)
        cache.insert(hd("aa"), "hash-obj", 10)
        got = cache.lookup_batch(
            [hd("aa"), vd([0.99, 0.01]), hd("bb"), vd([0, 1])])
        assert [e and e.result for e in got] == \
            ["hash-obj", "vec-obj", None, None]
        assert (cache.stats.hits, cache.stats.misses) == (2, 2)

    def test_unknown_kind_is_miss(self):
        cache = ICCache(capacity_bytes=1000)
        assert cache.lookup_batch([vd([1, 0])]) == [None]
        assert cache.stats.misses == 1

    def test_empty_batch(self):
        cache = ICCache(capacity_bytes=1000)
        assert cache.lookup_batch([]) == []
        assert cache.stats.lookups == 0

    def test_threshold_override(self):
        cache = ICCache(capacity_bytes=1000, default_threshold=0.0)
        cache.insert(vd([1, 0]), "x", 10)
        assert cache.lookup_batch([vd([0.9, 0.1])]) == [None]
        got = cache.lookup_batch([vd([0.9, 0.1])], threshold=0.5)
        assert got[0] is not None

    def test_expired_entry_purged_once_mid_batch(self):
        cache = ICCache(capacity_bytes=1000, ttl_s=5.0)
        cache.insert(vd([1, 0, 0]), "stale", 10, now=0.0)
        cache.insert(vd([0, 1, 0]), "fresh", 10, now=8.0)
        probes = [vd([1, 0, 0]), vd([0.99, 0.01, 0]), vd([0, 1, 0])]
        got = cache.lookup_batch(probes, now=10.0)
        # Both probes of the expired entry miss; only one purge; the
        # fresh entry still hits after the mid-batch index mutation.
        assert [e and e.result for e in got] == [None, None, "fresh"]
        assert cache.stats.expirations == 1
        assert (cache.stats.hits, cache.stats.misses) == (1, 2)
        assert len(cache) == 1

    def test_batch_policy_recency_order(self):
        # LRU recency must reflect batch order exactly as sequential.
        batched, sequential = self._twin_caches(
            policy=make_policy("lru"))
        for cache in (batched, sequential):
            cache.insert(hd("aa"), "a", 400, now=0.0)
            cache.insert(hd("bb"), "b", 400, now=0.0)
        batched.lookup_batch([hd("aa"), hd("bb")], now=1.0)
        sequential.lookup(hd("aa"), now=1.0)
        sequential.lookup(hd("bb"), now=1.0)
        # Force one eviction in each; the same victim must be chosen.
        batched.insert(hd("cc"), "c", 400, now=2.0)
        sequential.insert(hd("cc"), "c", 400, now=2.0)
        assert ([e.result for e in batched.entries()]
                == [e.result for e in sequential.entries()])


class TestPerItemThresholds:
    """lookup_batch accepts one threshold per descriptor."""

    def test_thresholds_apply_per_item(self):
        cache = ICCache(capacity_bytes=1000, default_threshold=0.0)
        cache.insert(vd([1, 0]), "x", 10)
        probe = [0.9, 0.1]
        got = cache.lookup_batch([vd(probe), vd(probe)],
                                 thresholds=[0.0, 0.5])
        assert got[0] is None and got[1] is not None

    def test_none_threshold_falls_back_to_default(self):
        cache = ICCache(capacity_bytes=1000, default_threshold=0.5)
        cache.insert(vd([1, 0]), "x", 10)
        got = cache.lookup_batch([vd([0.9, 0.1])], thresholds=[None])
        assert got[0] is not None

    def test_thresholds_length_validated(self):
        cache = ICCache(capacity_bytes=1000)
        with pytest.raises(ValueError):
            cache.lookup_batch([vd([1, 0])], thresholds=[0.1, 0.2])

    def test_matches_sequential_per_threshold(self):
        batched = ICCache(capacity_bytes=10_000, default_threshold=0.0)
        sequential = ICCache(capacity_bytes=10_000, default_threshold=0.0)
        for cache in (batched, sequential):
            cache.insert(vd([1, 0, 0]), "a", 10)
            cache.insert(vd([0, 1, 0], kind="pano"), "b", 10)
        probes = [vd([0.9, 0.1, 0]), vd([0.1, 0.9, 0], kind="pano"),
                  vd([1, 0, 0])]
        thresholds = [0.5, 0.5, 0.001]
        got = batched.lookup_batch(probes, thresholds=thresholds)
        want = [sequential.lookup(p, threshold=t)
                for p, t in zip(probes, thresholds)]
        assert [e and e.result for e in got] == \
            [e and e.result for e in want]
        assert batched.stats == sequential.stats


class TestStorageTiers:
    def test_vector_dtype_validated(self):
        with pytest.raises(ValueError):
            ICCache(capacity_bytes=1000, vector_dtype="float16")

    def test_int8_cache_still_matches(self):
        cache = ICCache(capacity_bytes=1000, vector_dtype="int8",
                        default_threshold=0.1)
        cache.insert(vd([1, 0, 0]), "obj", 10)
        assert cache.lookup(vd([0.99, 0.05, 0])) is not None

    def test_index_memory_bytes_counts_fused_core_once(self):
        cache = ICCache(capacity_bytes=100_000)
        for i in range(32):
            cache.insert(vd([1, 0, 0, i], kind="recognition"), "a", 10)
            cache.insert(vd([0, 1, 0, i], kind="pano"), "b", 10)
        # Both vector kinds share one fused core (same dim): the
        # dedup walk must not double-count its store.
        per_kind = [cache.index_for("recognition").memory_bytes(),
                    cache.index_for("pano").memory_bytes()]
        assert per_kind[0] == per_kind[1]  # shared store, same bytes
        assert cache.index_memory_bytes() == per_kind[0]

    def test_float64_cache_memory_doubles_float32(self):
        def filled(dtype):
            cache = ICCache(capacity_bytes=1_000_000, vector_dtype=dtype)
            rng = np.random.default_rng(0)
            for i in range(200):
                cache.insert(vd(rng.normal(size=64)), i, 10)
            return cache.index_memory_bytes()

        assert filled("float32") <= 0.55 * filled("float64")
