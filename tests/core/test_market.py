"""Tests for the multi-operator federation marketplace (PR 9).

Covers :class:`~repro.core.scenario.OperatorSpec` (policy semantics and
serde), the :class:`~repro.core.market.FederationBroker` (consent,
quotes, the pure auction, round/timeout bookkeeping, ledger
settlement), the market mode of both load balancers (an all-free open
market must select identically to the broker-less code path), and the
deployment-level money trail: offload / federation / pre-warm billing,
broker-timeout fallback with outcome accounting intact, and the
denied-consent guarantee that a refused peer is never even probed.
"""

import dataclasses
import hashlib

import numpy as np
import pytest

from repro.core.cache import CacheSummary
from repro.core.index import AffinitySketch
from repro.core.market import Bid, FederationBroker
from repro.core.metrics import (
    LEDGER_FEDERATION,
    LEDGER_OFFLOAD,
    LEDGER_PREWARM,
    LedgerEntry,
    MetricsRecorder,
    OUTCOME_SHED,
)
from repro.core.pipeline import AffinityLoadBalancer, PeerLoadBalancer
from repro.core.scenario import (
    EdgePolicySpec,
    EdgeSpec,
    OperatorSpec,
    ScenarioSpec,
    WarmupSpec,
)


def recorder_digest(recorder) -> str:
    """A byte-exact fingerprint of every record's observable fields."""
    blob = repr([(r.task_kind, r.outcome, r.user, r.start_s.hex(),
                  r.end_s.hex(), r.correct) for r in recorder.records])
    return hashlib.sha256(blob.encode()).hexdigest()


def vec(seed: int, dim: int = 128) -> np.ndarray:
    rng = np.random.Generator(np.random.PCG64(seed))
    v = rng.normal(size=dim)
    return v / np.linalg.norm(v)


def broker_for(operators, by_edge, recorder=None, seed=0):
    """A broker over a minimal spec: one edge per ``by_edge`` key."""
    edges = tuple(EdgeSpec(name=name) for name in by_edge)
    spec = ScenarioSpec(edges=edges).with_operators(operators,
                                                    dict(by_edge))
    return FederationBroker(spec, recorder or MetricsRecorder(),
                            seed=seed)


# -- OperatorSpec -------------------------------------------------------------


class TestOperatorSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            OperatorSpec(name="")
        with pytest.raises(ValueError):
            OperatorSpec(name="op", price=-1.0)
        with pytest.raises(ValueError):
            OperatorSpec(name="op", budget=-0.5)
        with pytest.raises(ValueError):
            OperatorSpec(name="op", agreements=(("peer", 1.0),
                                                ("peer", 2.0)))
        with pytest.raises(ValueError):
            OperatorSpec(name="op", agreements=(("peer", -1.0),))

    def test_quote_prefers_bilateral_agreement(self):
        op = OperatorSpec(name="op", price=5.0,
                          agreements=(("friend", 1.0),))
        assert op.quote_for("friend") == 1.0
        assert op.quote_for("stranger") == 5.0

    def test_consent_semantics(self):
        op = OperatorSpec(name="op", allow=("a", "b"), deny=("b",))
        assert op.consents_to("op")      # self always
        assert op.consents_to("a")
        assert not op.consents_to("b")   # deny beats allow
        assert not op.consents_to("c")   # not on the allow-list
        open_market = OperatorSpec(name="op2", deny=("b",))
        assert open_market.consents_to("a")   # allow None = anyone
        assert not open_market.consents_to("b")

    def test_serde_roundtrip(self):
        op = OperatorSpec(name="op", price=2.5, budget=7.0,
                          allow=("a",), deny=("b",),
                          agreements=(("a", 0.5),))
        assert OperatorSpec.from_dict(op.to_dict()) == op
        free = OperatorSpec(name="free")
        restored = OperatorSpec.from_dict(free.to_dict())
        assert restored == free
        assert restored.budget is None and restored.allow is None


class TestScenarioOperators:
    def test_spec_roundtrip(self):
        spec = ScenarioSpec(edges=(EdgeSpec(name="e0"),
                                   EdgeSpec(name="e1")))
        spec = spec.with_operators(
            (OperatorSpec(name="opA", budget=3.0),
             OperatorSpec(name="opB", price=1.0, deny=("opA",))),
            {"e0": "opA", "e1": "opB"})
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.edge("e0").operator == "opA"
        assert restored.operator("opB").deny == ("opA",)

    def test_undeclared_operator_references_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(edges=(EdgeSpec(name="e0", operator="ghost"),))
        with pytest.raises(ValueError):
            ScenarioSpec(edges=(EdgeSpec(name="e0"),),
                         operators=(OperatorSpec(name="op",
                                                 deny=("ghost",)),))
        with pytest.raises(ValueError):
            ScenarioSpec(edges=(EdgeSpec(name="e0"),),
                         operators=(OperatorSpec(name="op"),
                                    OperatorSpec(name="op")))

    def test_with_operators_rejects_unknown_edges(self):
        spec = ScenarioSpec(edges=(EdgeSpec(name="e0"),))
        with pytest.raises(ValueError):
            spec.with_operators((OperatorSpec(name="op"),),
                                {"nope": "op"})

    def test_operator_lookup(self):
        spec = ScenarioSpec(edges=(EdgeSpec(name="e0"),),
                            operators=(OperatorSpec(name="op"),))
        assert spec.operator("op").name == "op"
        with pytest.raises(KeyError):
            spec.operator("ghost")


# -- broker: consent, quotes, admissibility -----------------------------------


class TestBrokerConsent:
    def test_same_domain_and_unassigned_always_free(self):
        broker = broker_for((OperatorSpec(name="opA", price=9.0),),
                            {"a": "opA", "b": "opA", "c": ""})
        assert broker.consent("opA", "opA")
        assert broker.quote("opA", "opA") == 0.0
        assert broker.admissible("a", "b")
        # Unassigned edges are outside the market entirely.
        assert broker.admissible("a", "c") and broker.admissible("c", "a")
        assert broker.price_between("a", "c") == 0.0

    def test_provider_deny_blocks(self):
        broker = broker_for(
            (OperatorSpec(name="opA"),
             OperatorSpec(name="opB", deny=("opA",))),
            {"a": "opA", "b": "opB"})
        assert not broker.consent("opA", "opB")
        assert not broker.admissible("a", "b")
        # A deny severs the relationship in both directions: the pair
        # trades nothing, whoever would be paying.
        assert not broker.consent("opB", "opA")
        assert not broker.admissible("b", "a")

    def test_consumer_deny_blocks_too(self):
        # A consumer that denied a provider never buys from it either.
        broker = broker_for(
            (OperatorSpec(name="opA", deny=("opB",)),
             OperatorSpec(name="opB")),
            {"a": "opA", "b": "opB"})
        assert not broker.consent("opA", "opB")
        assert not broker.admissible("a", "b")

    def test_allow_list_restricts(self):
        broker = broker_for(
            (OperatorSpec(name="opA"), OperatorSpec(name="opB"),
             OperatorSpec(name="opC", allow=("opA",))),
            {"a": "opA", "b": "opB", "c": "opC"})
        assert broker.admissible("a", "c")
        assert not broker.admissible("b", "c")

    def test_budget_gates_admissibility(self):
        broker = broker_for(
            (OperatorSpec(name="opA", budget=2.0),
             OperatorSpec(name="opB", price=3.0),
             OperatorSpec(name="opC", price=2.0)),
            {"a": "opA", "b": "opB", "c": "opC"})
        assert not broker.admissible("a", "b")   # 3.0 > budget 2.0
        assert broker.admissible("a", "c")       # 2.0 <= budget 2.0
        # No budget = unlimited willingness to pay.
        no_budget = broker_for(
            (OperatorSpec(name="opA"),
             OperatorSpec(name="opB", price=1e9)),
            {"a": "opA", "b": "opB"})
        assert no_budget.admissible("a", "b")

    def test_agreement_price_used_for_quotes(self):
        broker = broker_for(
            (OperatorSpec(name="opA", budget=1.0),
             OperatorSpec(name="opB", price=5.0,
                          agreements=(("opA", 0.5),))),
            {"a": "opA", "b": "opB"})
        assert broker.price_between("a", "b") == 0.5
        assert broker.admissible("a", "b")   # agreement fits the budget


# -- the auction (pure function) ----------------------------------------------


def bid(provider, rank, price=0.0, order=0, operator="op"):
    return Bid(provider=provider, operator=operator, rank=rank,
               price=price, order=order)


class TestAuction:
    def test_empty_and_unaffordable_rounds_yield_none(self):
        assert FederationBroker.auction([], budget=None) is None
        bids = [bid("b", rank=(1,), price=9.0)]
        assert FederationBroker.auction(bids, budget=5.0) is None

    def test_best_rank_wins_regardless_of_price(self):
        bids = [bid("cheap", rank=(4,), price=0.0, order=0),
                bid("fast", rank=(1,), price=3.0, order=1)]
        winner = FederationBroker.auction(bids, budget=None)
        assert winner.provider == "fast"

    def test_price_breaks_rank_ties(self):
        bids = [bid("dear", rank=(2,), price=3.0, order=0),
                bid("cheap", rank=(2,), price=1.0, order=1)]
        assert FederationBroker.auction(bids, budget=None).provider == \
            "cheap"

    def test_registration_order_breaks_full_ties(self):
        # The pre-market balancers' tie-break: first registered wins.
        bids = [bid("first", rank=(2,), price=1.0, order=0),
                bid("second", rank=(2,), price=1.0, order=1)]
        assert FederationBroker.auction(bids, budget=None).provider == \
            "first"

    def test_budget_filters_before_ranking(self):
        bids = [bid("fast", rank=(0,), price=9.0, order=0),
                bid("slow", rank=(5,), price=1.0, order=1)]
        assert FederationBroker.auction(bids, budget=2.0).provider == \
            "slow"

    def test_exact_budget_is_affordable(self):
        bids = [bid("b", rank=(1,), price=2.0)]
        assert FederationBroker.auction(bids, budget=2.0) is not None
        # A zero-price bid fits even a zero budget.
        assert FederationBroker.auction([bid("b", rank=(1,), price=0.0)],
                                        budget=0.0) is not None

    def test_seed_never_perturbs_the_winner(self):
        bids = [bid("x", rank=(3,), price=1.0, order=0),
                bid("y", rank=(2,), price=2.0, order=1)]
        winners = {FederationBroker.auction(bids, budget=None,
                                            seed=s).provider
                   for s in range(20)}
        assert winners == {"y"}


class TestBrokerRounds:
    def test_rounds_count_and_fail_next(self):
        broker = broker_for((OperatorSpec(name="op"),), {"a": "op"})
        assert broker.begin_round() is True
        broker.fail_next(2)
        assert broker.begin_round() is False
        assert broker.begin_round() is False
        assert broker.begin_round() is True
        assert broker.rounds == 4
        assert broker.timeouts == 2
        with pytest.raises(ValueError):
            broker.fail_next(-1)


# -- settlement and the ledger ------------------------------------------------


class TestSettlement:
    def test_same_domain_and_unassigned_settle_nothing(self):
        recorder = MetricsRecorder()
        broker = broker_for((OperatorSpec(name="op", price=4.0),),
                            {"a": "op", "b": "op", "c": ""},
                            recorder=recorder)
        assert broker.settle(LEDGER_OFFLOAD, "a", "b", now=1.0) is None
        assert broker.settle(LEDGER_OFFLOAD, "a", "c", now=1.0) is None
        assert recorder.ledger == []
        assert broker.settled == 0

    def test_cross_operator_settlement_posts_double_entry(self):
        recorder = MetricsRecorder()
        broker = broker_for(
            (OperatorSpec(name="opA"),
             OperatorSpec(name="opB", price=2.5)),
            {"a": "opA", "b": "opB"}, recorder=recorder)
        charge = broker.settle(LEDGER_FEDERATION, "a", "b", now=3.0,
                               detail={"kind": "peer_lookup"})
        assert charge == ("opA", 2.5)
        assert broker.settled == 1
        entry = recorder.ledger[0]
        assert entry.kind == LEDGER_FEDERATION
        assert (entry.consumer, entry.provider) == ("opA", "opB")
        assert entry.price == 2.5 and entry.time_s == 3.0
        assert entry.detail["src_edge"] == "a"
        assert entry.detail["kind"] == "peer_lookup"
        balances = recorder.operator_balances()
        assert balances == {"opA": -2.5, "opB": 2.5}
        assert sum(balances.values()) == pytest.approx(0.0)

    def test_zero_price_transactions_keep_the_audit_trail(self):
        recorder = MetricsRecorder()
        broker = broker_for(
            (OperatorSpec(name="opA"), OperatorSpec(name="opB")),
            {"a": "opA", "b": "opB"}, recorder=recorder)
        assert broker.settle(LEDGER_PREWARM, "a", "b", now=0.0) == \
            ("opA", 0.0)
        assert len(recorder.ledger) == 1
        assert recorder.operator_balances() == {"opA": 0.0, "opB": 0.0}

    def test_settlement_summary_aggregates(self):
        recorder = MetricsRecorder()
        broker = broker_for(
            (OperatorSpec(name="opA"),
             OperatorSpec(name="opB", price=2.0),
             OperatorSpec(name="opC", price=1.0)),
            {"a": "opA", "b": "opB", "c": "opC"}, recorder=recorder)
        broker.settle(LEDGER_OFFLOAD, "a", "b", now=0.0)
        broker.settle(LEDGER_OFFLOAD, "a", "b", now=1.0)
        broker.settle(LEDGER_FEDERATION, "a", "c", now=2.0)
        summary = recorder.settlement_summary()
        assert list(summary) == ["opA", "opB", "opC"]
        assert summary["opA"].spent == 5.0
        assert summary["opA"].earned == 0.0
        assert summary["opA"].net == -5.0
        assert summary["opB"].earned == 4.0
        assert summary["opB"].transactions == 2
        assert summary["opC"].net == 1.0

    def test_recorder_rejects_malformed_entries(self):
        recorder = MetricsRecorder()
        with pytest.raises(ValueError):
            recorder.post(LedgerEntry(time_s=0.0, consumer="a",
                                      provider="b", price=-1.0, kind="x"))
        with pytest.raises(ValueError):
            recorder.post(LedgerEntry(time_s=0.0, consumer="a",
                                      provider="a", price=1.0, kind="x"))


# -- market mode of the balancers ---------------------------------------------


class _FakeEdge:
    def __init__(self, load, summaries=None):
        self.load = load
        self.peer_summaries = summaries or {}


def _summary_holding(v) -> CacheSummary:
    sketch = AffinitySketch()
    sketch.add(v)
    return CacheSummary(kinds={"recognition": 1},
                        sketches={"recognition": sketch.summary()})


LOAD_SWEEP = ((5, 2, 1), (5, 1, 2), (2, 2, 2), (1, 4, 5), (0, 0, 0),
              (4, 3, 3))


def _free_broker():
    return broker_for(
        (OperatorSpec(name="opA"), OperatorSpec(name="opB"),
         OperatorSpec(name="opC")),
        {"a": "opA", "b": "opB", "c": "opC"})


class TestMarketLeastLoaded:
    def _register(self, balancer, loads):
        balancer.register("a", _FakeEdge(loads[0]), ["b", "c"])
        balancer.register("b", _FakeEdge(loads[1]), ["a"])
        balancer.register("c", _FakeEdge(loads[2]), ["a"])

    def test_open_market_identical_to_brokerless(self):
        # Decision identity: an all-free three-operator market must pick
        # exactly what the PR 3 balancer picks, for every load shape
        # and margin — the broker filters, it never re-ranks.
        for margin in (0, 1, 2):
            for loads in LOAD_SWEEP:
                market = PeerLoadBalancer(margin=margin,
                                          broker=_free_broker())
                plain = PeerLoadBalancer(margin=margin)
                self._register(market, loads)
                self._register(plain, loads)
                assert market.pick("a") == plain.pick("a"), (margin, loads)

    def test_denied_provider_never_bids(self):
        broker = broker_for(
            (OperatorSpec(name="opA"), OperatorSpec(name="opB"),
             OperatorSpec(name="opC", deny=("opA",))),
            {"a": "opA", "b": "opB", "c": "opC"})
        balancer = PeerLoadBalancer(margin=1, broker=broker)
        self._register(balancer, (5, 2, 1))
        # Broker-less least-loaded would pick "c" (load 1); the denial
        # removes it from the auction entirely.
        assert balancer.pick("a") == "b"

    def test_over_budget_provider_never_bids(self):
        broker = broker_for(
            (OperatorSpec(name="opA", budget=1.0),
             OperatorSpec(name="opB"),
             OperatorSpec(name="opC", price=2.0)),
            {"a": "opA", "b": "opB", "c": "opC"})
        balancer = PeerLoadBalancer(margin=1, broker=broker)
        self._register(balancer, (5, 2, 1))
        assert balancer.pick("a") == "b"

    def test_everyone_inadmissible_means_no_pick(self):
        broker = broker_for(
            (OperatorSpec(name="opA"),
             OperatorSpec(name="opB", deny=("opA",)),
             OperatorSpec(name="opC", deny=("opA",))),
            {"a": "opA", "b": "opB", "c": "opC"})
        balancer = PeerLoadBalancer(margin=1, broker=broker)
        self._register(balancer, (5, 2, 1))
        assert balancer.pick("a") is None

    def test_timeout_round_picks_nothing(self):
        broker = _free_broker()
        balancer = PeerLoadBalancer(margin=1, broker=broker)
        self._register(balancer, (5, 2, 1))
        broker.fail_next(1)
        assert balancer.pick("a") is None
        assert broker.timeouts == 1
        assert balancer.pick("a") == "c"   # next round recovers


class TestMarketAffinity:
    def test_open_market_identical_to_brokerless(self):
        # With summaries in play: the market-mode affinity pick must
        # equal the broker-less affinity pick for every load shape,
        # with and without an affinity key.
        content = vec(9)
        summaries = {"b": _summary_holding(content)}
        for loads in LOAD_SWEEP:
            market = AffinityLoadBalancer(margin=1,
                                          broker=_free_broker())
            plain = AffinityLoadBalancer(margin=1)
            for balancer in (market, plain):
                balancer.register("a", _FakeEdge(loads[0], summaries),
                                  ["b", "c"])
                balancer.register("b", _FakeEdge(loads[1]), ["a"])
                balancer.register("c", _FakeEdge(loads[2]), ["a"])
            assert market.pick("a", key=content) == \
                plain.pick("a", key=content), loads
            assert market.pick("a", key=None) == \
                plain.pick("a", key=None), loads

    def test_denied_provider_excluded_despite_best_affinity(self):
        content = vec(9)
        broker = broker_for(
            (OperatorSpec(name="opA"), OperatorSpec(name="opB"),
             OperatorSpec(name="opC", deny=("opA",))),
            {"a": "opA", "b": "opB", "c": "opC"})
        asking = _FakeEdge(5, summaries={"c": _summary_holding(content)})
        balancer = AffinityLoadBalancer(margin=1, broker=broker)
        balancer.register("a", asking, ["b", "c"])
        balancer.register("b", _FakeEdge(2), ["a"])
        balancer.register("c", _FakeEdge(1), ["a"])
        # "c" holds the content AND is least loaded, but consent fails:
        # the auction and the fallback both exclude it.
        assert balancer.pick("a", key=content) == "b"


# -- deployment-level: the money trail ----------------------------------------


OFFLOAD_POLICY = EdgePolicySpec(offload="least_loaded", queue_limit=0,
                                offload_margin=0)


def _priced_ops(price=3.0, budget=None, deny=()):
    return (OperatorSpec(name="opA", budget=budget),
            OperatorSpec(name="opB", price=price, deny=deny))


class TestDeploymentWiring:
    def test_no_operators_means_no_broker(self, make_deployment):
        dep = make_deployment(policy=OFFLOAD_POLICY)
        assert dep.broker is None
        assert dep.balancer.broker is None

    def test_operators_wire_the_broker_everywhere(self, make_spec,
                                                  make_deployment):
        spec = make_spec(policy=OFFLOAD_POLICY)
        spec = dataclasses.replace(spec, federate=True)
        spec = spec.with_operators(_priced_ops(),
                                   {"edge0": "opA", "edge1": "opB"})
        dep = make_deployment(spec=spec)
        assert dep.broker is not None
        assert dep.balancer.broker is dep.broker
        assert all(edge.broker is dep.broker for edge in dep.edges)


class TestOffloadBilling:
    def test_cross_operator_offload_is_billed(self, make_spec,
                                              make_deployment):
        spec = make_spec(policy=OFFLOAD_POLICY).with_operators(
            _priced_ops(price=3.0), {"edge0": "opA", "edge1": "opB"})
        dep = make_deployment(spec=spec, seed=1)
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(5)])[0]
        # Served by the neighbour, and the consumer operator paid for it.
        assert record.edge == "edge1"
        assert record.outcome == "miss"
        assert record.billed_to == "opA"
        assert record.price == 3.0
        assert len(dep.recorder.ledger) == 1
        assert dep.recorder.ledger[0].kind == LEDGER_OFFLOAD
        assert dep.recorder.operator_balances() == {"opA": -3.0,
                                                    "opB": 3.0}
        assert dep.broker.settled == 1

    def test_free_market_offload_matches_no_market(self, make_spec,
                                                   make_deployment):
        # Inert-policy equality at offload scale: declaring all-free
        # operators must not move a single byte of telemetry.
        def digest(spec):
            dep = make_deployment(spec=spec, seed=1)
            dep.run_tasks(dep.client_by_name["m0"],
                          [dep.recognition_task(5),
                           dep.recognition_task(6)])
            return recorder_digest(dep.recorder)

        plain = make_spec(policy=OFFLOAD_POLICY)
        market = plain.with_operators(
            (OperatorSpec(name="opA"), OperatorSpec(name="opB")),
            {"edge0": "opA", "edge1": "opB"})
        assert digest(market) == digest(plain)

    def test_same_operator_offload_is_free(self, make_spec,
                                           make_deployment):
        spec = make_spec(policy=OFFLOAD_POLICY).with_operators(
            (OperatorSpec(name="opA", price=9.0),),
            {"edge0": "opA", "edge1": "opA"})
        dep = make_deployment(spec=spec, seed=1)
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(5)])[0]
        assert record.edge == "edge1"
        assert record.billed_to is None and record.price == 0.0
        assert dep.recorder.ledger == []


class TestBrokerTimeoutFallback:
    def test_timeout_falls_back_to_cloud_redirect(self, make_spec,
                                                  make_deployment):
        policy = EdgePolicySpec(offload="least_loaded", queue_limit=0,
                                offload_margin=0, admission="redirect")
        spec = make_spec(policy=policy).with_operators(
            _priced_ops(), {"edge0": "opA", "edge1": "opB"})
        dep = make_deployment(spec=spec, seed=1)
        dep.broker.fail_next(1)
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(3)])[0]
        # No bids this round: the admission policy's cloud redirect
        # runs with its usual accounting — and nothing was billed.
        assert record.outcome == "miss"
        assert record.correct is True
        assert dep.edges[0].redirect_count == 1
        assert dep.edges[0].offloaded_out == 0
        assert dep.broker.timeouts == 1
        assert dep.recorder.ledger == []
        # The next round auctions normally again.
        second = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(4)])[0]
        assert second.edge == "edge1"
        assert dep.edges[0].offloaded_out == 1

    def test_timeout_falls_back_to_shed(self, make_spec,
                                        make_deployment):
        policy = EdgePolicySpec(offload="least_loaded", queue_limit=0,
                                offload_margin=0, admission="shed")
        spec = make_spec(policy=policy).with_operators(
            _priced_ops(), {"edge0": "opA", "edge1": "opB"})
        dep = make_deployment(spec=spec, seed=1)
        dep.broker.fail_next(1)
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(3)])[0]
        assert record.outcome == OUTCOME_SHED
        assert dep.edges[0].shed_count == 1
        assert dep.recorder.ledger == []


class TestFederationConsentAndBilling:
    def _federated_spec(self, make_spec, operators):
        spec = make_spec(clients=(("m0",), ()),
                         warmup=WarmupSpec(classes=(7,),
                                           edges=("edge1",)))
        spec = dataclasses.replace(spec, federate=True)
        return spec.with_operators(operators,
                                   {"edge0": "opA", "edge1": "opB"})

    def test_denied_peer_is_never_probed(self, make_spec,
                                         make_deployment):
        spec = self._federated_spec(make_spec,
                                    _priced_ops(deny=("opA",)))
        dep = make_deployment(spec=spec)
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(7)])[0]
        # The warm peer would have answered — but consent failed, so
        # the probe was never sent and the miss went to the cloud.
        assert record.outcome == "miss"
        assert record.correct is True
        assert dep.edges[0].probe_log == []
        assert dep.edges[0].peer_probes == 0
        assert dep.recorder.ledger == []

    def test_consented_probe_hits_and_is_billed(self, make_spec,
                                                make_deployment):
        spec = self._federated_spec(make_spec, _priced_ops(price=2.0))
        dep = make_deployment(spec=spec)
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(7)])[0]
        assert record.outcome == "hit"
        assert record.billed_to == "opA"
        assert record.price == 2.0
        assert [peer for _, peer in dep.edges[0].probe_log] == ["edge1"]
        assert len(dep.recorder.ledger) == 1
        entry = dep.recorder.ledger[0]
        assert entry.kind == LEDGER_FEDERATION
        assert (entry.consumer, entry.provider) == ("opA", "opB")
        assert sum(dep.recorder.operator_balances().values()) == \
            pytest.approx(0.0)

    def test_open_market_probe_is_free(self, make_spec,
                                       make_deployment):
        spec = self._federated_spec(
            make_spec, (OperatorSpec(name="opA"),
                        OperatorSpec(name="opB")))
        dep = make_deployment(spec=spec)
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(7)])[0]
        assert record.outcome == "hit"
        # Zero-price settlement: audit trail yes, credits no.
        assert record.billed_to == "opA" and record.price == 0.0
        assert dep.recorder.ledger[0].price == 0.0
        assert dep.recorder.operator_balances() == {"opA": 0.0,
                                                    "opB": 0.0}


class TestPrewarmConsentAndBilling:
    def _spec(self, make_spec, operators):
        spec = make_spec(clients=(("m0",), ()),
                         policy=EdgePolicySpec(prewarm_top_k=4),
                         warmup=WarmupSpec(classes=(0, 1),
                                           edges=("edge0",)))
        return spec.with_operators(operators,
                                   {"edge0": "opA", "edge1": "opB"})

    def test_denied_destination_refuses_the_push(self, make_spec,
                                                 make_deployment):
        dep = make_deployment(
            spec=self._spec(make_spec, _priced_ops(deny=("opA",))))
        assert dep.prewarm("edge0", "edge1", client_name="m0") is False
        dep.env.run()
        assert dep.prewarm_pushed == 0
        assert dep.recorder.ledger == []

    def test_delivered_push_bills_the_departing_operator(
            self, make_spec, make_deployment):
        dep = make_deployment(
            spec=self._spec(make_spec, _priced_ops(price=1.5)))
        assert dep.prewarm("edge0", "edge1", client_name="m0") is True
        dep.env.run()
        assert dep.prewarm_pushed == 2
        assert len(dep.recorder.ledger) == 1
        entry = dep.recorder.ledger[0]
        assert entry.kind == LEDGER_PREWARM
        assert (entry.consumer, entry.provider) == ("opA", "opB")
        assert entry.price == 1.5
        assert entry.detail["client"] == "m0"
        assert entry.detail["entries"] == 2
