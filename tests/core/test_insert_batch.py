"""Tests for the batched insert path: indexes and the IC cache.

Contract: ``insert_batch`` produces the same observable state as the
equivalent sequence of ``insert`` calls — same entries, same match
decisions, same stats and eviction order — while amortizing the
signature/norm work into one vectorized pass per burst.
"""

import numpy as np
import pytest

from repro.core.cache import ICCache
from repro.core.descriptors import HashDescriptor, VectorDescriptor
from repro.core.index import (
    ExactIndex,
    IndexEntryExists,
    LinearIndex,
    LshIndex,
)

DIM = 16


def vec_descriptor(rng, kind="recognition"):
    return VectorDescriptor(kind=kind, vector=rng.normal(size=DIM))


def batch_items(rng, n, start_id=0):
    return [(start_id + i, vec_descriptor(rng)) for i in range(n)]


class TestLinearIndexBatch:
    def test_matches_sequential_inserts(self):
        rng = np.random.default_rng(0)
        items = batch_items(rng, 40)
        batched = LinearIndex()
        batched.insert_batch(items)
        sequential = LinearIndex()
        for entry_id, descriptor in items:
            sequential.insert(entry_id, descriptor)

        assert len(batched) == len(sequential) == 40
        for _, descriptor in items:
            assert (batched.query(descriptor, 0.1)
                    == sequential.query(descriptor, 0.1))

    def test_growth_across_doubling_boundary(self):
        rng = np.random.default_rng(1)
        index = LinearIndex()
        # MIN_CAPACITY is 64: a 70-row burst must grow mid-batch once,
        # then a second burst crosses the next boundary too.
        index.insert_batch(batch_items(rng, 70))
        index.insert_batch(batch_items(rng, 70, start_id=70))
        assert len(index) == 140
        probe = vec_descriptor(rng)
        index.insert(999, probe)
        assert index.query(probe, 1e-5)[0] == 999

    def test_duplicate_id_rejected(self):
        rng = np.random.default_rng(2)
        index = LinearIndex()
        index.insert(7, vec_descriptor(rng))
        with pytest.raises(IndexEntryExists):
            index.insert_batch([(8, vec_descriptor(rng)),
                                (7, vec_descriptor(rng))])
        with pytest.raises(IndexEntryExists):
            index.insert_batch([(9, vec_descriptor(rng)),
                                (9, vec_descriptor(rng))])

    def test_empty_batch_is_noop(self):
        index = LinearIndex()
        index.insert_batch([])
        assert len(index) == 0

    def test_remove_after_batch_insert(self):
        rng = np.random.default_rng(3)
        items = batch_items(rng, 10)
        index = LinearIndex()
        index.insert_batch(items)
        index.remove(items[3][0])
        assert len(index) == 9
        assert index.query(items[3][1], 1e-5) is None
        assert index.query(items[4][1], 1e-5)[0] == items[4][0]


class TestLshIndexBatch:
    def test_matches_sequential_inserts(self):
        rng = np.random.default_rng(4)
        items = batch_items(rng, 40)
        batched = LshIndex(dim=DIM)
        batched.insert_batch(items)
        sequential = LshIndex(dim=DIM)
        for entry_id, descriptor in items:
            sequential.insert(entry_id, descriptor)

        assert len(batched) == len(sequential) == 40
        assert batched._tables == sequential._tables
        for _, descriptor in items:
            assert (batched.query(descriptor, 0.5)
                    == sequential.query(descriptor, 0.5))

    def test_remove_after_batch_insert(self):
        rng = np.random.default_rng(5)
        items = batch_items(rng, 12)
        index = LshIndex(dim=DIM)
        index.insert_batch(items)
        index.remove(items[0][0])
        assert len(index) == 11
        assert index.query(items[0][1], 1e-5) is None

    def test_duplicate_id_rejected_atomically(self):
        rng = np.random.default_rng(6)
        index = LshIndex(dim=DIM)
        with pytest.raises(IndexEntryExists):
            index.insert_batch([(1, vec_descriptor(rng)),
                                (1, vec_descriptor(rng))])
        # Validation happens before any mutation: nothing landed.
        assert len(index) == 0


class TestExactIndexBatch:
    def test_default_batch_path(self):
        index = ExactIndex()
        items = [(i, HashDescriptor(kind="model_load", digest=f"d{i}"))
                 for i in range(5)]
        index.insert_batch(items)
        assert len(index) == 5
        assert index.query(items[2][1], 0.0) == (2, 0.0)


class TestCacheInsertBatch:
    def _items(self, rng, n, size_bytes=100):
        return [(vec_descriptor(rng), f"result{i}", size_bytes)
                for i in range(n)]

    def test_matches_sequential_semantics(self):
        rng = np.random.default_rng(7)
        items = self._items(rng, 20)
        batched = ICCache(capacity_bytes=10_000, descriptor_dim=DIM)
        entries = batched.insert_batch(items, now=1.0)
        sequential = ICCache(capacity_bytes=10_000, descriptor_dim=DIM)
        for descriptor, result, size in items:
            sequential.insert(descriptor, result, size, now=1.0)

        assert len(batched) == len(sequential) == 20
        assert batched.size_bytes == sequential.size_bytes
        assert batched.stats.insertions == sequential.stats.insertions == 20
        assert all(e is not None for e in entries)
        for descriptor, result, _ in items:
            hit = batched.lookup(descriptor, now=1.0, threshold=1e-5)
            assert hit is not None and hit.result == result

    def test_eviction_mid_batch(self):
        rng = np.random.default_rng(8)
        cache = ICCache(capacity_bytes=1_000, descriptor_dim=DIM)
        entries = cache.insert_batch(self._items(rng, 15, size_bytes=100))
        assert all(e is not None for e in entries)
        # 15 x 100 B into 1000 B: five evictions, accounting intact.
        assert len(cache) == 10
        assert cache.size_bytes == 1_000
        assert cache.stats.evictions == 5
        # Survivors are the newest ten under LRU.
        live = {e.result for e in cache.entries()}
        assert live == {f"result{i}" for i in range(5, 15)}

    def test_oversize_rejected_in_place(self):
        rng = np.random.default_rng(9)
        cache = ICCache(capacity_bytes=500, descriptor_dim=DIM)
        items = [(vec_descriptor(rng), "small", 100),
                 (vec_descriptor(rng), "huge", 501),
                 (vec_descriptor(rng), "small2", 100)]
        entries = cache.insert_batch(items)
        assert entries[0] is not None and entries[2] is not None
        assert entries[1] is None
        assert cache.stats.rejected == 1
        assert len(cache) == 2

    def test_mixed_kinds_share_one_batch(self):
        rng = np.random.default_rng(10)
        cache = ICCache(capacity_bytes=10_000, descriptor_dim=DIM)
        items = [
            (vec_descriptor(rng), "vec0", 100),
            (HashDescriptor(kind="model_load", digest="aa"), "model", 200),
            (vec_descriptor(rng), "vec1", 100),
            (HashDescriptor(kind="panorama", digest="bb"), "pano", 300),
        ]
        entries = cache.insert_batch(items)
        assert all(e is not None for e in entries)
        assert len(cache) == 4
        hit = cache.lookup(HashDescriptor(kind="model_load", digest="aa"))
        assert hit is not None and hit.result == "model"

    def test_negative_size_raises(self):
        rng = np.random.default_rng(11)
        cache = ICCache(capacity_bytes=500, descriptor_dim=DIM)
        with pytest.raises(ValueError):
            cache.insert_batch([(vec_descriptor(rng), "x", -1)])

    def test_index_failure_rolls_back_pending_entries(self):
        rng = np.random.default_rng(12)
        cache = ICCache(capacity_bytes=10_000, descriptor_dim=DIM)
        good = vec_descriptor(rng)
        cache.insert(good, "seed", 100)
        bad = VectorDescriptor(kind="recognition",
                               vector=rng.normal(size=DIM + 1))
        with pytest.raises(ValueError):
            cache.insert_batch([(vec_descriptor(rng), "pending", 100),
                                (bad, "bad", 100)])
        # The failed burst left no stranded entries: bookkeeping and
        # index agree, lookups and eviction still work.
        assert len(cache) == 1
        assert cache.size_bytes == 100
        assert cache.stats.insertions == 1
        assert cache.lookup(good, threshold=1e-5).result == "seed"
        refill = [(vec_descriptor(rng), f"r{i}", 100) for i in range(120)]
        assert all(e is not None for e in cache.insert_batch(refill))
        assert cache.size_bytes <= 10_000
