"""Tests for repro.core.scenario (declarative deployment specs)."""

import json

import pytest

from repro.core.scenario import (
    ClientSpec,
    EdgeSpec,
    InterEdgeLinkSpec,
    BackgroundTrafficSpec,
    MobilitySpec,
    ScenarioSpec,
    WarmupSpec,
    load_spec,
)


class TestValidation:
    def test_needs_an_edge(self):
        with pytest.raises(ValueError):
            ScenarioSpec(edges=())

    def test_duplicate_edge_names(self):
        with pytest.raises(ValueError, match="unique"):
            ScenarioSpec(edges=(EdgeSpec(name="a"), EdgeSpec(name="a")))

    def test_duplicate_client_names_across_edges(self):
        with pytest.raises(ValueError, match="unique"):
            ScenarioSpec(edges=(
                EdgeSpec(name="a", clients=(ClientSpec(name="m"),)),
                EdgeSpec(name="b", clients=(ClientSpec(name="m"),))))

    def test_client_edge_name_collision(self):
        with pytest.raises(ValueError, match="collide"):
            ScenarioSpec(edges=(
                EdgeSpec(name="a", clients=(ClientSpec(name="b"),)),
                EdgeSpec(name="b")))

    def test_cloud_reserved(self):
        with pytest.raises(ValueError, match="reserved"):
            ScenarioSpec(edges=(EdgeSpec(name="cloud"),))

    def test_inter_edge_unknown_endpoint(self):
        with pytest.raises(ValueError, match="unknown edge"):
            ScenarioSpec(edges=(EdgeSpec(name="a"), EdgeSpec(name="b")),
                         inter_edge=(InterEdgeLinkSpec(a="a", b="zz"),))

    def test_unknown_peer(self):
        with pytest.raises(ValueError, match="unknown peer"):
            ScenarioSpec(edges=(EdgeSpec(name="a", peers=("zz",)),))

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            InterEdgeLinkSpec(a="a", b="a")

    def test_mobility_knobs_validated(self):
        with pytest.raises(ValueError):
            MobilitySpec(mean_dwell_s=0)
        with pytest.raises(ValueError):
            MobilitySpec(handoff_latency_s=-1)


class TestBuilders:
    def test_single_edge_matches_legacy_wiring(self):
        spec = ScenarioSpec.single_edge(3)
        assert spec.edge_names == ["edge"]
        assert spec.client_names == ["mobile0", "mobile1", "mobile2"]
        assert spec.edges[0].backhaul_stream == "net.backhaul"
        assert spec.edges[0].clients[1].wifi_stream == "net.wifi.mobile1"
        assert spec.baselines and spec.impairments and spec.vision_streams
        assert not spec.federate and not spec.inter_edge

    def test_federated_matches_legacy_wiring(self):
        spec = ScenarioSpec.federated(n_edges=3, clients_per_edge=2)
        assert spec.edge_names == ["edge0", "edge1", "edge2"]
        assert spec.edges[1].clients[0].name == "mobile1_0"
        assert spec.edges[1].clients[0].wifi_stream == "net.wifi.1.0"
        assert spec.edges[1].backhaul_stream == "net.backhaul.1"
        assert spec.edges[1].peers == ("edge0", "edge2")
        # Full metro mesh: C(3, 2) duplex links.
        assert len(spec.inter_edge) == 3
        assert spec.inter_edge[0].stream == "net.metro.edge0.edge1"
        assert spec.federate
        assert not spec.impairments and not spec.vision_streams

    def test_metro_positions_on_grid(self):
        mobility = MobilitySpec(extent_m=1000.0)
        spec = ScenarioSpec.metro(n_edges=4, clients_per_edge=1,
                                  mobility=mobility)
        positions = {(e.x, e.y) for e in spec.edges}
        assert positions == {(250.0, 250.0), (750.0, 250.0),
                             (250.0, 750.0), (750.0, 750.0)}
        assert spec.mobility is mobility

    def test_metro_grid_mesh(self):
        # 3x3 grid: 2 links per interior row/column pair = 12 duplex
        # links instead of C(9, 2) = 36, and every edge keeps at most
        # its 4-neighbourhood.
        spec = ScenarioSpec.metro(n_edges=9, clients_per_edge=0,
                                  mesh="grid")
        assert len(spec.inter_edge) == 12
        degree: dict = {}
        for link in spec.inter_edge:
            degree[link.a] = degree.get(link.a, 0) + 1
            degree[link.b] = degree.get(link.b, 0) + 1
        assert max(degree.values()) == 4
        assert set(degree) == {e.name for e in spec.edges}
        # Ragged last row stays connected through vertical links.
        ragged = ScenarioSpec.metro(n_edges=5, clients_per_edge=0,
                                    mesh="grid")
        names = {e.name for e in ragged.edges}
        adj: dict = {name: set() for name in names}
        for link in ragged.inter_edge:
            adj[link.a].add(link.b)
            adj[link.b].add(link.a)
        seen, stack = set(), ["edge0"]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adj[node])
        assert seen == names

    def test_builder_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec.single_edge(0)
        with pytest.raises(ValueError):
            ScenarioSpec.metro(mesh="ring")
        with pytest.raises(ValueError):
            ScenarioSpec.federated(n_edges=0)
        with pytest.raises(ValueError):
            ScenarioSpec.federated(clients_per_edge=0)


class TestSerialization:
    def _roundtrip(self, spec):
        data = spec.to_dict()
        json.dumps(data)  # must be plain JSON-able types
        return ScenarioSpec.from_dict(json.loads(json.dumps(data)))

    def test_roundtrip_single_edge(self):
        spec = ScenarioSpec.single_edge(2)
        assert self._roundtrip(spec) == spec

    def test_roundtrip_federated(self):
        spec = ScenarioSpec.federated(n_edges=3, clients_per_edge=2,
                                      metro_delay_ms=7.0)
        assert self._roundtrip(spec) == spec

    def test_roundtrip_metro_with_mobility_and_warmup(self):
        spec = ScenarioSpec.metro(
            n_edges=4, clients_per_edge=2,
            mobility=MobilitySpec(mean_dwell_s=9.0, handoff_latency_s=0.2),
            warmup=WarmupSpec(classes=(1, 2), models=(0,),
                              edges=("edge0",)))
        restored = self._roundtrip(spec)
        assert restored == spec
        assert restored.mobility.mean_dwell_s == 9.0
        assert restored.warmup.edges == ("edge0",)

    def test_from_dict_accepts_client_name_shorthand(self):
        spec = ScenarioSpec.from_dict({
            "edges": [{"name": "e0", "clients": ["m0", "m1"]}]})
        assert spec.edges[0].clients[1] == ClientSpec(name="m1")

    def test_load_spec_variants(self, tmp_path):
        spec = ScenarioSpec.federated(n_edges=2)
        data = spec.to_dict()
        assert load_spec(data) == spec
        assert load_spec(json.dumps(data)) == spec
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(data))
        assert load_spec(str(path)) == spec

    def test_roundtrip_lte_access(self):
        spec = ScenarioSpec(edges=(
            EdgeSpec(name="e0", clients=(ClientSpec(name="m0",
                                                    access="lte"),
                                         ClientSpec(name="m1"))),))
        restored = self._roundtrip(spec)
        assert restored.edges[0].clients[0].access == "lte"
        assert restored.edges[0].clients[1].access == "wifi"

    def test_roundtrip_mobility_bias(self):
        mobility = MobilitySpec(n_places=4, bias=(8.0, 1.0, 1.0, 1.0))
        spec = ScenarioSpec.metro(n_edges=2, mobility=mobility)
        restored = self._roundtrip(spec)
        assert restored.mobility.bias == (8.0, 1.0, 1.0, 1.0)

    def test_roundtrip_bias_schedule_and_trace(self):
        mobility = MobilitySpec(
            n_places=4,
            bias_schedule=((0.0, (1.0, 1.0, 1.0, 1.0)),
                           (30.0, (8.0, 1.0, 1.0, 1.0))),
            itinerary_trace={"mobile0_0": [[0.0, 1], [9.5, 3]]})
        spec = ScenarioSpec.metro(n_edges=2, mobility=mobility)
        restored = self._roundtrip(spec)
        assert restored.mobility.bias_schedule == (
            (0.0, (1.0, 1.0, 1.0, 1.0)), (30.0, (8.0, 1.0, 1.0, 1.0)))
        assert restored.mobility.itinerary_trace == {
            "mobile0_0": [[0.0, 1], [9.5, 3]]}

    def test_roundtrip_background_traffic(self):
        background = BackgroundTrafficSpec(period_s=120.0, peak_util=0.3,
                                           update_s=5.0, phase_s=10.0,
                                           scope="all")
        spec = ScenarioSpec.metro(n_edges=2, background=background)
        restored = self._roundtrip(spec)
        assert restored.background == background
        assert restored == spec


class TestAccessAndBiasValidation:
    def test_unknown_access_rejected(self):
        with pytest.raises(ValueError, match="access"):
            ClientSpec(name="m0", access="5g")

    def test_bias_length_must_match_places(self):
        with pytest.raises(ValueError, match="bias"):
            MobilitySpec(n_places=4, bias=(1.0, 2.0))

    def test_bias_weights_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="bias"):
            MobilitySpec(n_places=2, bias=(1.0, -0.5))

    def test_bias_weights_must_not_all_be_zero(self):
        with pytest.raises(ValueError, match="bias"):
            MobilitySpec(n_places=2, bias=(0.0, 0.0))


class TestBackgroundAndScheduleValidation:
    def test_background_scope_rejected(self):
        with pytest.raises(ValueError, match="scope"):
            BackgroundTrafficSpec(scope="wifi")

    def test_background_peak_util_bounds(self):
        with pytest.raises(ValueError):
            BackgroundTrafficSpec(peak_util=1.5)

    def test_background_level_curve(self):
        bg = BackgroundTrafficSpec(period_s=100.0)
        assert bg.level(0.0) == pytest.approx(0.0)
        assert bg.level(50.0) == pytest.approx(1.0)
        assert bg.level(100.0) == pytest.approx(0.0)
        shifted = BackgroundTrafficSpec(period_s=100.0, phase_s=50.0)
        assert shifted.level(0.0) == pytest.approx(1.0)

    def test_bias_schedule_sorted_and_sized(self):
        with pytest.raises(ValueError):
            MobilitySpec(n_places=2,
                         bias_schedule=((5.0, (1.0, 1.0)),
                                        (0.0, (1.0, 1.0))))
        with pytest.raises(ValueError):
            MobilitySpec(n_places=2, bias_schedule=((0.0, (1.0,)),))
        with pytest.raises(ValueError):
            MobilitySpec(n_places=2, bias_schedule=())
