"""Tests for partial-inference serving (the layer-reuse stage) and the
shed retry-after backoff.

The tentpole of this PR: with ``EdgePolicySpec.layer_reuse`` the
pipeline reads the layer caches PR 4 only *transported* — extraction
passes seed tap activations, drifted re-captures resume mid-network
(``partial`` outcome), prewarmed entries become servable at the handoff
target, and the knobs stay inert by default (the metro golden digest in
``test_cluster.py`` pins that).
"""

import pytest

from repro.core.metrics import (
    MetricsRecorder,
    OUTCOME_HIT,
    OUTCOME_MISS,
    OUTCOME_PARTIAL,
    RequestRecord,
)
from repro.core.pipeline import (
    AdmitStage,
    LayerReuseStage,
    build_pipeline,
    default_pipeline,
)
from repro.core.scenario import EdgePolicySpec


def reuse_policy(**kwargs):
    return EdgePolicySpec(layer_reuse=True, **kwargs)


class TestPolicyKnobs:
    def test_round_trip(self):
        policy = reuse_policy(layer_plan_margin_s=0.25, prewarm_layers=3,
                              shed_retries=2)
        assert EdgePolicySpec.from_dict(policy.to_dict()) == policy

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgePolicySpec(layer_plan_margin_s=-0.1)
        with pytest.raises(ValueError):
            EdgePolicySpec(shed_retries=-1)

    def test_uses_layer_cache(self):
        assert not EdgePolicySpec().uses_layer_cache
        assert EdgePolicySpec(prewarm_layers=2).uses_layer_cache
        assert reuse_policy().uses_layer_cache

    def test_layer_reuse_does_not_gate_admission(self):
        assert not reuse_policy().gates_admission


class TestPipelineWiring:
    def test_stage_sits_between_classify_and_lookup(self):
        pipeline = build_pipeline(reuse_policy())
        assert pipeline.stage_names == \
            ["admit", "classify", "layer_reuse", "lookup", "resolve",
             "respond"]
        assert isinstance(pipeline.stages[2], LayerReuseStage)

    def test_inert_policy_keeps_the_default_chain(self):
        assert build_pipeline(EdgePolicySpec()).stage_names == \
            default_pipeline().stage_names

    def test_composes_with_admission_control(self):
        pipeline = build_pipeline(reuse_policy(admission="shed"))
        assert pipeline.stage_names[:3] == \
            ["admit", "classify", "layer_reuse"]

    def test_insert_after_unknown_stage_rejected(self):
        with pytest.raises(KeyError):
            default_pipeline().insert_after("nope", AdmitStage())


class TestPartialServing:
    def test_extraction_seeds_then_drifted_capture_resumes(
            self, make_deployment):
        dep = make_deployment(clients=(("m0", "m1"), ()),
                              policy=reuse_policy())
        # Cold capture: misses to the cloud, but its extraction seeds
        # the backbone taps (conv1..conv5 for vgg16) under its sketch.
        first = dep.run_tasks(dep.client_by_name["m0"],
                              [dep.recognition_task(7, viewpoint=0.0,
                                                    user="m0", seq=0)])[0]
        assert first.outcome == OUTCOME_MISS
        edge = dep.edges[0]
        assert edge.layer_seeded == 5
        assert edge.layer_manager is dep.layer_managers["edge0"]
        # Layer entries are priced in *seconds* on the producing device
        # (not raw GFLOPs), so cost-aware eviction in the shared cache
        # compares them fairly against cloud-fetched result entries.
        device = edge.recognizer.device
        deepest = max(
            (e for e in dep.caches[0].entries()
             if e.descriptor.kind.startswith("layer:")),
            key=lambda e: e.cost_s)
        assert deepest.cost_s == pytest.approx(
            device.seconds_for_gflops(
                edge.layer_manager.network.backbone_gflops))
        # Drifted re-capture: past the descriptor threshold, inside the
        # shallow/middle layer thresholds -> partial resume.
        second = dep.run_tasks(dep.client_by_name["m1"],
                               [dep.recognition_task(7, viewpoint=5.0,
                                                     user="m1", seq=0)])[0]
        assert second.outcome == OUTCOME_PARTIAL
        assert second.correct is True
        assert second.resume_layer is not None
        assert second.saved_s > 0.0
        assert second.latency_s < first.latency_s / 2
        assert edge.partial_served == 1
        assert edge.partial_saved_s == pytest.approx(second.saved_s)

    def test_reuse_compounds_across_drift_chains(self, make_deployment):
        dep = make_deployment(clients=(("m0", "m1"), ()),
                              policy=reuse_policy())
        run = lambda client, vp, seq: dep.run_tasks(
            dep.client_by_name[client],
            [dep.recognition_task(7, viewpoint=vp, user=client,
                                  seq=seq)])[0]
        run("m0", 0.0, 0)
        second = run("m1", 5.0, 0)
        # The partial serve re-cached the taps it computed under its own
        # sketch, so a capture near *it* (but far from the original)
        # resumes deeper than the first drift did.
        third = run("m0", 5.5, 1)
        assert second.outcome == OUTCOME_PARTIAL
        assert third.outcome == OUTCOME_PARTIAL
        network = dep.layer_managers["edge0"].network
        assert network.layer_index(third.resume_layer) >= \
            network.layer_index(second.resume_layer)

    def test_margin_rejects_thin_plans_but_still_seeds(
            self, make_deployment):
        # Margin above the whole inference time: no plan can save that
        # much, so every request walks the default path — yet the
        # declined probes still leave the sketch for seeding.
        dep = make_deployment(clients=(("m0", "m1"), ()),
                              policy=reuse_policy(layer_plan_margin_s=5.0))
        outcomes = [dep.run_tasks(
            dep.client_by_name[c],
            [dep.recognition_task(7, viewpoint=vp, user=c, seq=0)]
        )[0].outcome for c, vp in (("m0", 0.0), ("m1", 5.0))]
        assert OUTCOME_PARTIAL not in outcomes
        assert dep.edges[0].partial_served == 0
        assert dep.edges[0].layer_seeded > 0

    def test_client_descriptor_requests_never_seed(self, make_config,
                                                   make_deployment):
        # Client-computed descriptors are *planned* against the layer
        # cache (regression test below) but the edge never runs the
        # backbone for them, so there is nothing to seed: pure
        # client-descriptor traffic leaves the layer cache empty and
        # can never produce a partial on its own.
        cfg = make_config()
        cfg.recognition.descriptor_source = "client"
        dep = make_deployment(config=cfg, clients=(("m0", "m1"), ()),
                              policy=reuse_policy())
        for client, vp in (("m0", 0.0), ("m1", 5.0)):
            record = dep.run_tasks(
                dep.client_by_name[client],
                [dep.recognition_task(7, viewpoint=vp, user=client,
                                      seq=0)])[0]
            assert record.outcome != OUTCOME_PARTIAL
        assert dep.edges[0].layer_seeded == 0
        assert dep.edges[0].partial_served == 0

    def test_client_descriptor_requests_consume_layer_entries(
            self, make_config, make_deployment):
        # Regression (PR 9 residual fix): the layer-reuse stage used to
        # bypass any request arriving with a client-computed descriptor.
        # It now folds the shipped vector into sketch space — identical
        # to the edge-computed sketch, since capture extraction is
        # deterministic — so cached taps serve these requests too.
        from repro.core.index import input_sketch

        cfg = make_config()
        cfg.recognition.descriptor_source = "client"
        dep = make_deployment(config=cfg, clients=(("m0",), ()),
                              policy=reuse_policy())
        task = dep.recognition_task(7, viewpoint=0.0, user="m0", seq=0)
        observation = dep.edge_by_name["edge0"].recognizer.extract(
            task.frame)
        manager = dep.layer_managers["edge0"]
        manager.insert(input_sketch(observation.vector),
                       layers=manager.layers_through(
                           manager.network.feature_layer))
        record = dep.run_tasks(dep.client_by_name["m0"], [task])[0]
        assert record.outcome == OUTCOME_PARTIAL
        assert record.correct is True
        assert dep.edges[0].partial_served == 1
        # Consuming still never seeds: the pre-inserted taps are all
        # the layer cache ever holds.
        assert dep.edges[0].layer_seeded == 0

    def test_prewarmed_layer_entries_become_servable(self,
                                                     make_deployment):
        # The loop PR 4 left open: activations shipped by the pre-warm
        # push are *served* by the target's pipeline, before that edge
        # ever extracted anything itself.
        dep = make_deployment(
            clients=(("m0",), ()),
            policy=reuse_policy(prewarm_top_k=4, prewarm_layers=8))
        dep.run_tasks(dep.client_by_name["m0"],
                      [dep.recognition_task(7, viewpoint=0.0, user="m0",
                                            seq=0)])
        assert dep.prewarm("edge0", "edge1", client_name="m0")
        dep.run_for(10.0)
        assert dep.prewarm_layers_pushed > 0
        client = dep.client_by_name["m0"]
        dep.env.run(until=dep.env.process(dep.handoff(client, "edge1")))
        record = dep.run_tasks(client,
                               [dep.recognition_task(7, viewpoint=5.0,
                                                     user="m0", seq=1)])[0]
        assert record.outcome == OUTCOME_PARTIAL
        assert record.edge == "edge1"
        hub = dep.edge_by_name["edge1"]
        assert hub.partial_served == 1

    def test_recapture_resumes_at_the_feature_tap_then_full_result(
            self, make_deployment):
        dep = make_deployment(clients=(("m0", "m1"), ()),
                              policy=reuse_policy())
        network = dep.layer_managers["edge0"].network
        run = lambda client, vp, seq: dep.run_tasks(
            dep.client_by_name[client],
            [dep.recognition_task(7, viewpoint=vp, user=client,
                                  seq=seq)])[0]
        run("m0", 0.0, 0)
        # A near-identical capture can resume no deeper than the
        # feature tap: the miss path's extraction only ran the backbone
        # (the *cloud* ran the head), so only conv taps were seeded.
        second = run("m1", 0.05, 0)
        assert second.outcome == OUTCOME_PARTIAL
        assert second.resume_layer == network.feature_layer
        assert second.latency_s < 0.5
        # The partial serve just cached the head taps it computed — a
        # third capture nearby reuses the *final* layer: zero resume
        # compute, the deepest grain of the Potluck spectrum.
        third = run("m0", 0.1, 1)
        assert third.outcome == OUTCOME_PARTIAL
        assert third.resume_layer == network.layers[-1].name
        assert third.saved_s == pytest.approx(
            dep.edges[0].recognizer.inference_time())
        # The reused payload is the cached result, which here matches.
        assert third.correct is True

    def test_false_full_result_reuse_is_scored_incorrect(
            self, make_deployment):
        from repro.core.index import input_sketch
        from repro.vision.recognition import RecognitionResult

        dep = make_deployment(clients=(("m0",), ()),
                              policy=reuse_policy())
        manager = dep.layer_managers["edge0"]
        final = manager.network.layers[-1].name
        # Poison the final tap: a class-7 capture's sketch cached with
        # another object's result — the stand-in for a sketch collision
        # across objects (a false match the tightened deep threshold is
        # meant to make rare, not impossible).
        sketch = input_sketch(dep.space.observe(7, 0.0, noise_key=1).vector)
        manager.insert(sketch, layers=[final],
                       result=RecognitionResult(label=99, confidence=0.9))
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(7, viewpoint=0.0,
                                                     user="m0", seq=0)])[0]
        # Served as a full-result reuse of the *cached* payload: the
        # wrong label comes back and accuracy records the false hit.
        assert record.outcome == OUTCOME_PARTIAL
        assert record.resume_layer == final
        assert record.correct is False
        assert record.detail["label"] == 99

    def test_drifted_resume_carries_the_source_class(
            self, make_deployment):
        # Regression: resumed partials used to call the oracle
        # recognizer on the *request's* frame, so a resume from another
        # object's activations still came back "correct" — the sim
        # could never observe stale-reuse errors the real system makes.
        # Activations cached from a class-99 capture whose sketch
        # drifted past the descriptor match threshold (but inside the
        # shallow tap thresholds) must surface class 99, scored
        # incorrect.
        from repro.core.distance import pairwise
        from repro.core.index import input_sketch

        dep = make_deployment(clients=(("m0",), ()),
                              policy=reuse_policy())
        edge = dep.edge_by_name["edge0"]
        manager = dep.layer_managers["edge0"]
        task = dep.recognition_task(7, viewpoint=0.0, user="m0", seq=0)
        request = input_sketch(edge.recognizer.extract(task.frame).vector)
        # Stand-in for a cross-object sketch collision: geometry from a
        # far viewpoint of class 7, activations recorded as class 99.
        cached = input_sketch(dep.space.observe(7, 6.0, noise_key=1).vector)
        drift = pairwise(edge.config.cache.metric, request, cached)
        # Precondition for the bug: past the descriptor threshold yet
        # inside the shallowest tap threshold, so the plan resumes.
        assert edge.match_threshold < drift < manager.base_threshold
        manager.insert(cached,
                       layers=manager.layers_through(
                           manager.network.feature_layer),
                       source_class=99)
        record = dep.run_tasks(dep.client_by_name["m0"], [task])[0]
        assert record.outcome == OUTCOME_PARTIAL
        assert record.resume_layer is not None
        assert record.correct is False
        assert record.detail["label"] == 99

    def test_payload_less_final_tap_cannot_serve_full_result(
            self, make_deployment):
        from repro.core.index import input_sketch

        dep = make_deployment(clients=(("m0",), ()),
                              policy=reuse_policy())
        manager = dep.layer_managers["edge0"]
        final = manager.network.layers[-1].name
        # A legacy marker-only insert: the final tap exists but carries
        # no result to serve.  Full-result reuse must decline (there is
        # nothing to return) rather than oracle-substitute a correct
        # answer; with no shallower taps cached the request misses.
        sketch = input_sketch(dep.space.observe(7, 0.0, noise_key=1).vector)
        manager.insert(sketch, layers=[final])
        # plan() agrees with the serving walk: no promised free reuse.
        assert manager.plan(sketch).resume_after is None
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(7, viewpoint=0.0,
                                                     user="m0", seq=0)])[0]
        assert record.outcome == OUTCOME_MISS
        assert dep.edges[0].partial_served == 0

    def test_legacy_frames_pass_through(self, make_deployment):
        # Frames without a capture_id draw fresh extraction noise every
        # extract(): a sketch would key a different observation than
        # the descriptor, so the stage must not engage (or perturb the
        # recognizer RNG stream).
        from repro.core.tasks import RecognitionTask
        from repro.vision.image import CameraFrame, RESOLUTIONS

        dep = make_deployment(clients=(("m0",), ()),
                              policy=reuse_policy())
        rec = dep.config.recognition
        frame = CameraFrame(object_class=7, viewpoint=0.0,
                            resolution=RESOLUTIONS[rec.resolution],
                            quality=rec.quality)
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [RecognitionTask(frame=frame)])[0]
        assert record.outcome == OUTCOME_MISS
        assert dep.edges[0].layer_seeded == 0
        assert dep.edges[0].partial_served == 0


class TestPartialMetrics:
    @staticmethod
    def record(outcome, edge="edge0", saved=0.0, start=0.0, end=1.0):
        detail = {"saved_s": saved} if outcome == OUTCOME_PARTIAL else {}
        return RequestRecord(task_kind="recognition", outcome=outcome,
                             user="u", start_s=start, end_s=end,
                             detail=detail, edge=edge)

    def test_partial_ratio_and_saved_compute(self):
        recorder = MetricsRecorder()
        for outcome, saved in ((OUTCOME_HIT, 0.0), (OUTCOME_MISS, 0.0),
                               (OUTCOME_PARTIAL, 0.5),
                               (OUTCOME_PARTIAL, 0.25), ("shed", 0.0)):
            recorder.record(self.record(outcome, saved=saved))
        assert recorder.partial_ratio() == pytest.approx(0.5)
        assert recorder.saved_compute_s() == pytest.approx(0.75)
        # Sheds are excluded, exactly like hit_ratio.
        assert recorder.hit_ratio() == pytest.approx(0.5)

    def test_partial_ratio_empty(self):
        assert MetricsRecorder().partial_ratio() == 0.0
        assert MetricsRecorder().saved_compute_s() == 0.0

    def test_per_edge_partials(self):
        recorder = MetricsRecorder()
        recorder.record(self.record(OUTCOME_PARTIAL, edge="a", saved=1.0))
        recorder.record(self.record(OUTCOME_MISS, edge="a"))
        recorder.record(self.record(OUTCOME_HIT, edge="b"))
        per_edge = recorder.per_edge_partials()
        assert per_edge["a"].partials == 1
        assert per_edge["a"].served == 2
        assert per_edge["a"].ratio == pytest.approx(0.5)
        assert per_edge["a"].saved_s == pytest.approx(1.0)
        assert per_edge["b"].partials == 0
        assert per_edge["b"].ratio == 0.0


class TestShedRetryAfter:
    def shed_dep(self, make_deployment, **policy_kwargs):
        return make_deployment(
            seed=1,
            policy=EdgePolicySpec(admission="shed", queue_limit=0,
                                  **policy_kwargs))

    def test_shed_response_carries_drain_estimate(self, make_deployment):
        dep = self.shed_dep(make_deployment)
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(1)])[0]
        assert record.outcome == "shed"
        # Empty queue: the hint is one extraction per worker slot.
        edge = dep.edges[0]
        expected = edge.recognizer.extraction_time() / edge.compute.capacity
        assert record.detail["retry_after_s"] == pytest.approx(expected)

    def test_client_backs_off_and_retries(self, make_deployment,
                                          seeded_rng):
        # queue_limit=0 sheds forever: the retry budget is spent, the
        # final outcome is still shed, and the backoff pushed latency
        # past the (jittered) hint.
        dep = self.shed_dep(make_deployment)
        client = dep.client_by_name["m0"]
        client.shed_retries = 2
        client.backoff_rng = seeded_rng(3)
        record = dep.run_tasks(client, [dep.recognition_task(1)])[0]
        assert record.outcome == "shed"
        assert record.detail["retries"] == 2
        assert client.shed_retried == 2
        edge = dep.edges[0]
        hint = edge.recognizer.extraction_time() / edge.compute.capacity
        assert record.latency_s > 2 * hint

    def test_backoff_retry_can_succeed(self, make_deployment):
        # Transient overload: one worker, queue_limit=1.  Three near-
        # simultaneous requests: the third finds a backlog, is shed with
        # a drain estimate, waits it out, and is served on the re-send.
        dep = make_deployment(
            seed=1, edge_workers=1,
            clients=(("m0", "m1", "m2"), ()),
            policy=EdgePolicySpec(admission="shed", queue_limit=1))
        retrier = dep.client_by_name["m2"]
        retrier.shed_retries = 3
        dep.run_concurrent([
            (0.0, dep.client_by_name["m0"], dep.recognition_task(1)),
            (0.001, dep.client_by_name["m1"], dep.recognition_task(2)),
            (0.002, retrier, dep.recognition_task(3)),
        ])
        record = [r for r in dep.recorder.records if r.user == "m2"][0]
        assert record.outcome == OUTCOME_MISS
        assert record.detail["retries"] >= 1
        assert retrier.shed_retried >= 1
        assert dep.edges[0].shed_count >= 1

    def test_policy_wires_backoff_into_every_client(self,
                                                    make_deployment):
        dep = make_deployment(
            seed=1, policy=EdgePolicySpec(admission="shed", queue_limit=0,
                                          shed_retries=1))
        assert all(c.shed_retries == 1 and c.backoff_rng is not None
                   for c in dep.all_clients)
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(1)])[0]
        assert record.outcome == "shed"
        assert record.detail["retries"] == 1
        # Without the knob nothing is wired (no extra RNG streams).
        plain = self.shed_dep(make_deployment)
        assert all(c.shed_retries == 0 and c.backoff_rng is None
                   for c in plain.all_clients)

    def test_zero_retries_keeps_the_old_behaviour(self, make_deployment):
        dep = self.shed_dep(make_deployment)
        record = dep.run_tasks(dep.client_by_name["m0"],
                               [dep.recognition_task(1)])[0]
        assert record.outcome == "shed"
        assert "retries" not in record.detail
        assert dep.client_by_name["m0"].shed_retried == 0
