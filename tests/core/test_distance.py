"""Unit tests for repro.core.distance."""

import numpy as np
import pytest

from repro.core.distance import (
    cosine_distance,
    get_metric,
    l2_distance,
    l2sq_distance,
    pairwise,
)


class TestCosine:
    def test_identical_vectors_zero(self):
        v = np.array([1.0, 2.0, 3.0])
        assert pairwise("cosine", v, v) == pytest.approx(0.0, abs=1e-12)

    def test_orthogonal_vectors_one(self):
        assert pairwise("cosine", [1, 0], [0, 1]) == pytest.approx(1.0)

    def test_opposite_vectors_two(self):
        assert pairwise("cosine", [1, 0], [-1, 0]) == pytest.approx(2.0)

    def test_scale_invariant(self):
        a, b = np.array([1.0, 2.0]), np.array([2.0, 1.0])
        assert pairwise("cosine", a, b) == pytest.approx(
            pairwise("cosine", 10 * a, 0.5 * b))

    def test_zero_vector_max_distance(self):
        matrix = np.array([[0.0, 0.0], [1.0, 0.0]])
        distances = cosine_distance(matrix, np.array([1.0, 0.0]))
        assert distances[0] == pytest.approx(2.0)
        assert distances[1] == pytest.approx(0.0)

    def test_vectorized_matches_pairwise(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(10, 8))
        query = rng.normal(size=8)
        batch = cosine_distance(matrix, query)
        for row, expected in zip(matrix, batch):
            assert pairwise("cosine", row, query) == pytest.approx(expected)


class TestL2:
    def test_known_distance(self):
        assert pairwise("l2", [0, 0], [3, 4]) == pytest.approx(5.0)

    def test_l2sq_is_square(self):
        rng = np.random.default_rng(1)
        matrix = rng.normal(size=(5, 4))
        query = rng.normal(size=4)
        assert np.allclose(l2sq_distance(matrix, query),
                           l2_distance(matrix, query) ** 2)

    def test_triangle_inequality(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            a, b, c = rng.normal(size=(3, 6))
            ab = pairwise("l2", a, b)
            bc = pairwise("l2", b, c)
            ac = pairwise("l2", a, c)
            assert ac <= ab + bc + 1e-9


class TestRegistry:
    def test_known_metrics(self):
        for name in ("cosine", "l2", "l2sq"):
            assert callable(get_metric(name))

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            get_metric("manhattan")


class TestBatchForms:
    """Matrix-vs-batch metrics agree with their single-query forms."""

    METRICS = ("cosine", "l2", "l2sq")

    @pytest.mark.parametrize("name", METRICS)
    def test_batch_rows_match_single_queries(self, name):
        from repro.core.distance import get_metric_batch

        rng = np.random.default_rng(3)
        matrix = rng.normal(size=(12, 6))
        queries = rng.normal(size=(5, 6))
        batch = get_metric_batch(name)(matrix, queries)
        assert batch.shape == (5, 12)
        single = get_metric(name)
        for q, row in zip(queries, batch):
            assert np.allclose(single(matrix, q), row, atol=1e-12)

    @pytest.mark.parametrize("name", METRICS)
    def test_precomputed_norms_match_default(self, name):
        from repro.core.distance import get_metric_batch

        rng = np.random.default_rng(4)
        matrix = rng.normal(size=(9, 5))
        queries = rng.normal(size=(3, 5))
        fn = get_metric_batch(name)
        plain = fn(matrix, queries)
        primed = fn(matrix, queries,
                    row_norms=np.linalg.norm(matrix, axis=1),
                    query_norms=np.linalg.norm(queries, axis=1))
        assert np.allclose(plain, primed, atol=1e-12)

    def test_cosine_batch_degenerate_vectors(self):
        from repro.core.distance import cosine_distance_batch

        matrix = np.array([[0.0, 0.0], [1.0, 0.0]])
        queries = np.array([[1.0, 0.0], [0.0, 0.0]])
        got = cosine_distance_batch(matrix, queries)
        # Zero-norm on either side compares at maximum distance.
        assert got[0, 0] == pytest.approx(2.0)
        assert got[0, 1] == pytest.approx(0.0)
        assert got[1, 0] == pytest.approx(2.0)
        assert got[1, 1] == pytest.approx(2.0)

    def test_l2sq_batch_never_negative(self):
        from repro.core.distance import l2sq_distance_batch

        # Near-identical vectors: Gram-expansion cancellation must clip
        # at zero, never go negative.
        base = np.full((4, 8), 1e3)
        got = l2sq_distance_batch(base, base + 1e-13)
        assert np.all(got >= 0.0)

    def test_single_query_norm_kwargs(self):
        rng = np.random.default_rng(5)
        matrix = rng.normal(size=(7, 4))
        query = rng.normal(size=4)
        plain = get_metric("cosine")(matrix, query)
        primed = get_metric("cosine")(
            matrix, query, row_norms=np.linalg.norm(matrix, axis=1),
            query_norm=float(np.linalg.norm(query)))
        assert np.allclose(plain, primed, atol=1e-12)

    def test_batch_registry(self):
        from repro.core.distance import get_metric_batch

        for name in self.METRICS:
            assert callable(get_metric_batch(name))
        with pytest.raises(KeyError):
            get_metric_batch("manhattan")

    def test_batch_rejects_1d_queries(self):
        from repro.core.distance import cosine_distance_batch

        with pytest.raises(ValueError):
            cosine_distance_batch(np.eye(3), np.ones(3))
