"""Unit tests for repro.core.distance."""

import numpy as np
import pytest

from repro.core.distance import (
    cosine_distance,
    get_metric,
    l2_distance,
    l2sq_distance,
    pairwise,
)


class TestCosine:
    def test_identical_vectors_zero(self):
        v = np.array([1.0, 2.0, 3.0])
        assert pairwise("cosine", v, v) == pytest.approx(0.0, abs=1e-12)

    def test_orthogonal_vectors_one(self):
        assert pairwise("cosine", [1, 0], [0, 1]) == pytest.approx(1.0)

    def test_opposite_vectors_two(self):
        assert pairwise("cosine", [1, 0], [-1, 0]) == pytest.approx(2.0)

    def test_scale_invariant(self):
        a, b = np.array([1.0, 2.0]), np.array([2.0, 1.0])
        assert pairwise("cosine", a, b) == pytest.approx(
            pairwise("cosine", 10 * a, 0.5 * b))

    def test_zero_vector_max_distance(self):
        matrix = np.array([[0.0, 0.0], [1.0, 0.0]])
        distances = cosine_distance(matrix, np.array([1.0, 0.0]))
        assert distances[0] == pytest.approx(2.0)
        assert distances[1] == pytest.approx(0.0)

    def test_vectorized_matches_pairwise(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(10, 8))
        query = rng.normal(size=8)
        batch = cosine_distance(matrix, query)
        for row, expected in zip(matrix, batch):
            assert pairwise("cosine", row, query) == pytest.approx(expected)


class TestL2:
    def test_known_distance(self):
        assert pairwise("l2", [0, 0], [3, 4]) == pytest.approx(5.0)

    def test_l2sq_is_square(self):
        rng = np.random.default_rng(1)
        matrix = rng.normal(size=(5, 4))
        query = rng.normal(size=4)
        assert np.allclose(l2sq_distance(matrix, query),
                           l2_distance(matrix, query) ** 2)

    def test_triangle_inequality(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            a, b, c = rng.normal(size=(3, 6))
            ab = pairwise("l2", a, b)
            bc = pairwise("l2", b, c)
            ac = pairwise("l2", a, c)
            assert ac <= ab + bc + 1e-9


class TestRegistry:
    def test_known_metrics(self):
        for name in ("cosine", "l2", "l2sq"):
            assert callable(get_metric(name))

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            get_metric("manhattan")
