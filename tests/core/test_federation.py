"""Tests for repro.core.federation (multi-edge cooperation)."""

import pytest

from repro.core.config import CoICConfig
from repro.core.federation import FederatedDeployment, FederatedEdgeNode


@pytest.fixture
def config():
    cfg = CoICConfig()
    cfg.network.wifi_mbps = 100
    cfg.network.backhaul_mbps = 10
    return cfg


class TestTopology:
    def test_shape(self, config):
        dep = FederatedDeployment(config, n_edges=3, clients_per_edge=2)
        assert len(dep.edges) == 3
        assert len(dep.clients) == 3
        assert all(len(row) == 2 for row in dep.clients)
        # Edges are fully meshed over metro links.
        assert dep.topology.shortest_path("edge0", "edge2") == \
            ["edge0", "edge2"]

    def test_validation(self, config):
        with pytest.raises(ValueError):
            FederatedDeployment(config, n_edges=0)
        with pytest.raises(ValueError):
            FederatedDeployment(config, clients_per_edge=0)

    def test_peer_lists_exclude_self(self, config):
        dep = FederatedDeployment(config, n_edges=3)
        for k, edge in enumerate(dep.edges):
            assert isinstance(edge, FederatedEdgeNode)
            assert edge.host.name not in edge.peers
            assert len(edge.peers) == 2


class TestCrossEdgeSharing:
    def test_model_load_federated_hit(self, config):
        dep = FederatedDeployment(config, n_edges=2)
        task = dep.model_load_task(0)
        first = dep.run_tasks(dep.clients[0][0], [task])[0]
        dep.env.run()
        second = dep.run_tasks(dep.clients[1][0], [task])[0]
        assert first.outcome == "miss"
        assert second.outcome == "hit"
        assert dep.edges[1].peer_hits == 1
        # The federated hit also landed in edge1's own cache.
        assert len(dep.caches[1]) == 1

    def test_isolated_edges_re_miss(self, config):
        dep = FederatedDeployment(config, n_edges=2, federate=False)
        task = dep.model_load_task(0)
        dep.run_tasks(dep.clients[0][0], [task])
        dep.env.run()
        second = dep.run_tasks(dep.clients[1][0], [task])[0]
        assert second.outcome == "miss"

    def test_federated_faster_than_isolated(self, config):
        def second_edge_latency(federate):
            dep = FederatedDeployment(config, n_edges=2,
                                      federate=federate)
            task = dep.model_load_task(1)
            dep.run_tasks(dep.clients[0][0], [task])
            dep.env.run()
            return dep.run_tasks(dep.clients[1][0], [task])[0].latency_s

        assert second_edge_latency(True) < second_edge_latency(False)

    def test_recognition_federated_hit(self, config):
        dep = FederatedDeployment(config, n_edges=2)
        r1 = dep.run_tasks(dep.clients[0][0],
                           [dep.recognition_task(7, viewpoint=-0.2)])[0]
        dep.env.run()
        r2 = dep.run_tasks(dep.clients[1][0],
                           [dep.recognition_task(7, viewpoint=0.2)])[0]
        assert (r1.outcome, r2.outcome) == ("miss", "hit")
        assert r2.correct

    def test_panorama_federated_hit(self, config):
        dep = FederatedDeployment(config, n_edges=2)
        task = dep.panorama_task(0, 5)
        dep.run_tasks(dep.clients[0][0], [task])
        dep.env.run()
        r = dep.run_tasks(dep.clients[1][0], [task])[0]
        assert r.outcome == "hit"

    def test_cold_everywhere_falls_through_to_cloud(self, config):
        dep = FederatedDeployment(config, n_edges=2)
        r = dep.run_tasks(dep.clients[1][0],
                          [dep.model_load_task(0)])[0]
        assert r.outcome == "miss"
        assert dep.edges[1].peer_misses == 1

    def test_three_edge_diffusion(self, config):
        """Content fetched once per federation, not once per edge."""
        dep = FederatedDeployment(config, n_edges=3)
        task = dep.model_load_task(0)
        dep.run_tasks(dep.clients[0][0], [task])
        dep.env.run()
        dep.run_tasks(dep.clients[1][0], [task])
        dep.env.run()
        r3 = dep.run_tasks(dep.clients[2][0], [task])[0]
        assert r3.outcome == "hit"
        assert dep.cloud.requests_served == 1

    def test_peer_timeout_validated(self, config):
        dep = FederatedDeployment(config, n_edges=1)
        with pytest.raises(ValueError):
            FederatedEdgeNode(
                dep.env, dep.rpc, dep.topology.hosts["edge0"],
                cache=dep.caches[0], config=config,
                recognizer=dep.edges[0].recognizer,
                loader=dep.edges[0].loader, peer_timeout_s=0)


class TestAffinityProbeOrder:
    """Gossiped cache summaries steer peer probes likeliest-holder-first."""

    def _metro(self, config):
        from repro.core.cluster import ClusterDeployment
        from repro.core.scenario import ScenarioSpec, WarmupSpec

        # Metro spec with only the far edge (edge3) warmed: a miss at
        # edge0 must go hunting through the federation for class 7.
        spec = ScenarioSpec.metro(
            n_edges=4, clients_per_edge=1, federate=True,
            warmup=WarmupSpec(classes=(7,), edges=("edge3",)))
        return ClusterDeployment(spec, config=config)

    def test_spec_order_probes_every_cold_peer_first(self, config):
        dep = self._metro(config)
        record = dep.run_tasks(dep.clients_by_edge[0][0],
                               [dep.recognition_task(7)])[0]
        assert record.outcome == "hit"
        edge0 = dep.edges[0]
        assert edge0.peer_hits == 1
        # Without summaries, probing walks the configured order and
        # pays a backhaul round trip at edge1 and edge2 before edge3.
        assert edge0.peer_probes == 3

    def test_summaries_cut_probes_per_hit(self, config):
        dep = self._metro(config)
        edge0 = dep.edges[0]
        # One gossip round has landed: edge0 holds a fresh summary of
        # every peer (normally pushed by the deployment's gossip loop).
        for name, cache in dep.cache_by_name.items():
            if name != "edge0":
                edge0.peer_summaries[name] = cache.summary()
        record = dep.run_tasks(dep.clients_by_edge[0][0],
                               [dep.recognition_task(7)])[0]
        assert record.outcome == "hit"
        assert edge0.peer_hits == 1
        # The sketch points straight at the holder: one probe, no
        # wasted backhaul round trips at the cold peers.
        assert edge0.peer_probes == 1

    def test_probe_order_unchanged_without_summaries(self, config):
        dep = self._metro(config)
        edge0 = dep.edges[0]
        descriptor = dep.caches[3].entries()[0].descriptor
        assert edge0._probe_order(descriptor) == edge0.peers

    def test_cold_summaries_fall_back_to_spec_order(self, config):
        dep = self._metro(config)
        edge0 = dep.edges[0]
        # All peers report empty caches: every score ties at 0.0 and
        # the stable sort preserves the configured nearest-first order.
        from repro.core.cache import CacheSummary

        for peer in edge0.peers:
            edge0.peer_summaries[peer] = CacheSummary(kinds={}, sketches={})
        descriptor = dep.caches[3].entries()[0].descriptor
        assert edge0._probe_order(descriptor) == edge0.peers
