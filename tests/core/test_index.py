"""Unit tests for repro.core.index."""

import numpy as np
import pytest

from repro.core.descriptors import HashDescriptor, VectorDescriptor
from repro.core.index import (
    ExactIndex,
    IndexEntryExists,
    LinearIndex,
    LshIndex,
    make_index,
)


def vec(kind, values):
    return VectorDescriptor(kind, np.asarray(values, dtype=np.float32))


class TestExactIndex:
    def test_insert_query_remove(self):
        index = ExactIndex()
        d = HashDescriptor("m", "aa11")
        index.insert(1, d)
        assert index.query(d, threshold=0.0) == (1, 0.0)
        index.remove(1)
        assert index.query(d, threshold=0.0) is None
        assert len(index) == 0

    def test_duplicate_entry_id_rejected(self):
        index = ExactIndex()
        index.insert(1, HashDescriptor("m", "aa"))
        with pytest.raises(IndexEntryExists):
            index.insert(1, HashDescriptor("m", "bb"))

    def test_duplicate_digest_last_wins(self):
        index = ExactIndex()
        d = HashDescriptor("m", "cc")
        index.insert(1, d)
        index.insert(2, d)
        assert index.query(d, 0.0) == (2, 0.0)
        # Removing the superseded entry must not disturb the winner.
        index.remove(1)
        assert index.query(d, 0.0) == (2, 0.0)

    def test_type_checked(self):
        index = ExactIndex()
        with pytest.raises(TypeError):
            index.insert(1, vec("m", [1.0]))

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            ExactIndex().remove(5)

    def test_constant_lookup_cost(self):
        index = ExactIndex()
        cost_empty = index.lookup_cost_s()
        for i in range(100):
            index.insert(i, HashDescriptor("m", f"{i:x}"))
        assert index.lookup_cost_s() == cost_empty


class TestLinearIndex:
    def test_nearest_within_threshold(self):
        index = LinearIndex()
        index.insert(1, vec("r", [1, 0, 0]))
        index.insert(2, vec("r", [0, 1, 0]))
        hit = index.query(vec("r", [0.9, 0.1, 0]), threshold=0.2)
        assert hit is not None and hit[0] == 1

    def test_miss_outside_threshold(self):
        index = LinearIndex()
        index.insert(1, vec("r", [1, 0, 0]))
        assert index.query(vec("r", [0, 1, 0]), threshold=0.5) is None

    def test_returns_best_not_first(self):
        index = LinearIndex()
        index.insert(1, vec("r", [0.7, 0.7, 0]))
        index.insert(2, vec("r", [1, 0, 0]))
        hit = index.query(vec("r", [0.99, 0.05, 0]), threshold=1.0)
        assert hit[0] == 2

    def test_empty_query(self):
        assert LinearIndex().query(vec("r", [1, 0]), 1.0) is None

    def test_dimension_mismatch(self):
        index = LinearIndex()
        index.insert(1, vec("r", [1, 0, 0]))
        with pytest.raises(ValueError):
            index.insert(2, vec("r", [1, 0]))
        with pytest.raises(ValueError):
            index.query(vec("r", [1, 0]), 1.0)

    def test_remove_rebuilds_scan(self):
        index = LinearIndex()
        index.insert(1, vec("r", [1, 0]))
        index.insert(2, vec("r", [0, 1]))
        index.query(vec("r", [1, 0]), 1.0)  # builds the matrix
        index.remove(1)
        hit = index.query(vec("r", [1, 0]), threshold=2.0)
        assert hit[0] == 2

    def test_cost_grows_with_occupancy(self):
        index = LinearIndex()
        empty_cost = index.lookup_cost_s()
        for i in range(1000):
            index.insert(i, vec("r", [i, 1.0]))
        assert index.lookup_cost_s() > empty_cost


class TestLshIndex:
    @pytest.fixture
    def population(self):
        rng = np.random.default_rng(3)
        vectors = rng.normal(size=(200, 64))
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        return vectors

    def test_finds_near_duplicates(self, population):
        index = LshIndex(dim=64, n_tables=8, n_bits=10)
        for i, v in enumerate(population):
            index.insert(i, vec("r", v))
        rng = np.random.default_rng(4)
        found = 0
        for i in range(50):
            probe = population[i] + rng.normal(0, 0.02, size=64)
            hit = index.query(vec("r", probe), threshold=0.05)
            if hit is not None and hit[0] == i:
                found += 1
        assert found >= 45  # high recall on near-duplicates

    def test_respects_threshold(self, population):
        index = LshIndex(dim=64)
        index.insert(0, vec("r", population[0]))
        # A random unrelated vector must not match a tight threshold.
        assert index.query(vec("r", population[1]), threshold=0.05) is None

    def test_remove(self, population):
        index = LshIndex(dim=64)
        index.insert(0, vec("r", population[0]))
        index.remove(0)
        assert len(index) == 0
        assert index.query(vec("r", population[0]), 0.1) is None

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            LshIndex(dim=8).remove(1)

    def test_dimension_checked(self):
        index = LshIndex(dim=16)
        with pytest.raises(ValueError):
            index.insert(0, vec("r", np.ones(8)))

    def test_deterministic_planes(self, population):
        a = LshIndex(dim=64, seed=9)
        b = LshIndex(dim=64, seed=9)
        for i, v in enumerate(population[:20]):
            a.insert(i, vec("r", v))
            b.insert(i, vec("r", v))
        probe = vec("r", population[0])
        assert a.query(probe, 0.1) == b.query(probe, 0.1)


class TestMakeIndex:
    def test_specs(self):
        assert isinstance(make_index("exact"), ExactIndex)
        assert isinstance(make_index("linear"), LinearIndex)
        assert isinstance(make_index("lsh", dim=32), LshIndex)
        custom = make_index("lsh:4:6", dim=32)
        assert custom.n_tables == 4 and custom.n_bits == 6

    def test_bad_specs(self):
        with pytest.raises(ValueError):
            make_index("btree")
        with pytest.raises(ValueError):
            make_index("lsh:4")
