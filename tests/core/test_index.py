"""Unit tests for repro.core.index."""

import numpy as np
import pytest

from repro.core.descriptors import HashDescriptor, VectorDescriptor
from repro.core.index import (
    ExactIndex,
    FusedLinearCore,
    IndexEntryExists,
    IvfIndex,
    LinearIndex,
    LshIndex,
    make_index,
)


def vec(kind, values):
    return VectorDescriptor(kind, np.asarray(values, dtype=np.float32))


class TestExactIndex:
    def test_insert_query_remove(self):
        index = ExactIndex()
        d = HashDescriptor("m", "aa11")
        index.insert(1, d)
        assert index.query(d, threshold=0.0) == (1, 0.0)
        index.remove(1)
        assert index.query(d, threshold=0.0) is None
        assert len(index) == 0

    def test_duplicate_entry_id_rejected(self):
        index = ExactIndex()
        index.insert(1, HashDescriptor("m", "aa"))
        with pytest.raises(IndexEntryExists):
            index.insert(1, HashDescriptor("m", "bb"))

    def test_duplicate_digest_last_wins(self):
        index = ExactIndex()
        d = HashDescriptor("m", "cc")
        index.insert(1, d)
        index.insert(2, d)
        assert index.query(d, 0.0) == (2, 0.0)
        # Removing the superseded entry must not disturb the winner.
        index.remove(1)
        assert index.query(d, 0.0) == (2, 0.0)

    def test_type_checked(self):
        index = ExactIndex()
        with pytest.raises(TypeError):
            index.insert(1, vec("m", [1.0]))

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            ExactIndex().remove(5)

    def test_constant_lookup_cost(self):
        index = ExactIndex()
        cost_empty = index.lookup_cost_s()
        for i in range(100):
            index.insert(i, HashDescriptor("m", f"{i:x}"))
        assert index.lookup_cost_s() == cost_empty


class TestLinearIndex:
    def test_nearest_within_threshold(self):
        index = LinearIndex()
        index.insert(1, vec("r", [1, 0, 0]))
        index.insert(2, vec("r", [0, 1, 0]))
        hit = index.query(vec("r", [0.9, 0.1, 0]), threshold=0.2)
        assert hit is not None and hit[0] == 1

    def test_miss_outside_threshold(self):
        index = LinearIndex()
        index.insert(1, vec("r", [1, 0, 0]))
        assert index.query(vec("r", [0, 1, 0]), threshold=0.5) is None

    def test_returns_best_not_first(self):
        index = LinearIndex()
        index.insert(1, vec("r", [0.7, 0.7, 0]))
        index.insert(2, vec("r", [1, 0, 0]))
        hit = index.query(vec("r", [0.99, 0.05, 0]), threshold=1.0)
        assert hit[0] == 2

    def test_empty_query(self):
        assert LinearIndex().query(vec("r", [1, 0]), 1.0) is None

    def test_dimension_mismatch(self):
        index = LinearIndex()
        index.insert(1, vec("r", [1, 0, 0]))
        with pytest.raises(ValueError):
            index.insert(2, vec("r", [1, 0]))
        with pytest.raises(ValueError):
            index.query(vec("r", [1, 0]), 1.0)

    def test_remove_rebuilds_scan(self):
        index = LinearIndex()
        index.insert(1, vec("r", [1, 0]))
        index.insert(2, vec("r", [0, 1]))
        index.query(vec("r", [1, 0]), 1.0)  # builds the matrix
        index.remove(1)
        hit = index.query(vec("r", [1, 0]), threshold=2.0)
        assert hit[0] == 2

    def test_cost_grows_with_occupancy(self):
        index = LinearIndex()
        empty_cost = index.lookup_cost_s()
        for i in range(1000):
            index.insert(i, vec("r", [i, 1.0]))
        assert index.lookup_cost_s() > empty_cost


class TestLshIndex:
    @pytest.fixture
    def population(self):
        rng = np.random.default_rng(3)
        vectors = rng.normal(size=(200, 64))
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        return vectors

    def test_finds_near_duplicates(self, population):
        index = LshIndex(dim=64, n_tables=8, n_bits=10)
        for i, v in enumerate(population):
            index.insert(i, vec("r", v))
        rng = np.random.default_rng(4)
        found = 0
        for i in range(50):
            probe = population[i] + rng.normal(0, 0.02, size=64)
            hit = index.query(vec("r", probe), threshold=0.05)
            if hit is not None and hit[0] == i:
                found += 1
        assert found >= 45  # high recall on near-duplicates

    def test_respects_threshold(self, population):
        index = LshIndex(dim=64)
        index.insert(0, vec("r", population[0]))
        # A random unrelated vector must not match a tight threshold.
        assert index.query(vec("r", population[1]), threshold=0.05) is None

    def test_remove(self, population):
        index = LshIndex(dim=64)
        index.insert(0, vec("r", population[0]))
        index.remove(0)
        assert len(index) == 0
        assert index.query(vec("r", population[0]), 0.1) is None

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            LshIndex(dim=8).remove(1)

    def test_dimension_checked(self):
        index = LshIndex(dim=16)
        with pytest.raises(ValueError):
            index.insert(0, vec("r", np.ones(8)))

    def test_deterministic_planes(self, population):
        a = LshIndex(dim=64, seed=9)
        b = LshIndex(dim=64, seed=9)
        for i, v in enumerate(population[:20]):
            a.insert(i, vec("r", v))
            b.insert(i, vec("r", v))
        probe = vec("r", population[0])
        assert a.query(probe, 0.1) == b.query(probe, 0.1)


class TestMakeIndex:
    def test_specs(self):
        assert isinstance(make_index("exact"), ExactIndex)
        assert isinstance(make_index("linear"), LinearIndex)
        assert isinstance(make_index("lsh", dim=32), LshIndex)
        custom = make_index("lsh:4:6", dim=32)
        assert custom.n_tables == 4 and custom.n_bits == 6

    def test_ivf_specs(self):
        assert isinstance(make_index("ivf", dim=32), IvfIndex)
        auto = make_index("ivf", dim=32)
        assert auto.n_centroids == 0 and auto.nprobe == 0
        sized = make_index("ivf:64", dim=32)
        assert sized.n_centroids == 64
        full = make_index("ivf:64:4", dim=32)
        assert full.n_centroids == 64 and full.nprobe == 4

    def test_dtype_passthrough(self):
        assert make_index("linear", dtype="int8")._store.dtype == "int8"
        assert make_index("lsh", dim=32,
                          dtype="float64")._store.dtype == "float64"
        assert make_index("ivf", dim=32,
                          dtype="float32")._store.dtype == "float32"

    def test_bad_specs(self):
        with pytest.raises(ValueError):
            make_index("btree")
        with pytest.raises(ValueError):
            make_index("lsh:4")
        with pytest.raises(ValueError):
            make_index("ivf:x", dim=32)


class TestQueryBatch:
    """query_batch must agree element-wise with sequential query calls."""

    def _fill(self, index, vectors):
        for i, v in enumerate(vectors):
            index.insert(i, vec("r", v))

    def test_empty_batch(self):
        assert LinearIndex().query_batch([], 0.5) == []
        assert LshIndex(dim=4).query_batch([], 0.5) == []
        assert ExactIndex().query_batch([], 0.5) == []

    def test_batch_on_empty_index(self):
        probes = [vec("r", [1, 0]), vec("r", [0, 1])]
        assert LinearIndex().query_batch(probes, 2.0) == [None, None]
        assert LshIndex(dim=2).query_batch(probes, 2.0) == [None, None]

    # Distance-value agreement between a (Q, N) gemm and a (1, N) gemm
    # is dtype-bound: float64 wobble is ~1e-13, float32 ~1e-7.  Match
    # *decisions* must agree exactly in every dtype.
    DIST_TOL = {"float64": 1e-9, "float32": 1e-5, "int8": 1e-5}

    @pytest.mark.parametrize("dtype", ["float64", "float32", "int8"])
    def test_linear_batch_matches_sequential(self, dtype):
        rng = np.random.default_rng(11)
        population = rng.normal(size=(60, 16))
        index = LinearIndex(dtype=dtype)
        self._fill(index, population)
        probes = [vec("r", population[i] + rng.normal(0, 0.05, 16))
                  for i in range(20)]
        probes += [vec("r", rng.normal(size=16)) for _ in range(10)]
        batch = index.query_batch(probes, threshold=0.05)
        sequential = [index.query(p, threshold=0.05) for p in probes]
        assert len(batch) == len(sequential)
        for got, want in zip(batch, sequential):
            assert (got is None) == (want is None)
            if got is not None:
                assert got[0] == want[0]
                assert got[1] == pytest.approx(want[1],
                                               abs=self.DIST_TOL[dtype])

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_lsh_batch_matches_sequential(self, dtype):
        rng = np.random.default_rng(12)
        population = rng.normal(size=(120, 32))
        population /= np.linalg.norm(population, axis=1, keepdims=True)
        index = LshIndex(dim=32, n_tables=6, n_bits=8, dtype=dtype)
        self._fill(index, population)
        probes = [vec("r", population[i] + rng.normal(0, 0.02, 32))
                  for i in range(30)]
        batch = index.query_batch(probes, threshold=0.05)
        sequential = [index.query(p, threshold=0.05) for p in probes]
        for got, want in zip(batch, sequential):
            assert (got is None) == (want is None)
            if got is not None:
                assert got[0] == want[0]
                assert got[1] == pytest.approx(want[1],
                                               abs=self.DIST_TOL[dtype])

    def test_exact_batch_uses_sequential_fallback(self):
        index = ExactIndex()
        index.insert(1, HashDescriptor("m", "aa"))
        got = index.query_batch(
            [HashDescriptor("m", "aa"), HashDescriptor("m", "bb")], 0.0)
        assert got == [(1, 0.0), None]


class TestContiguousStore:
    """Amortized growth and swap-compacted removal, via the public API."""

    def test_growth_beyond_initial_capacity(self):
        index = LinearIndex()
        rng = np.random.default_rng(5)
        population = rng.normal(size=(300, 8))
        for i, v in enumerate(population):
            index.insert(i, vec("r", v))
        assert len(index) == 300
        # Every stored vector is still retrievable post-doubling.  The
        # self-match distance floor is dtype-bound: ~1e-16 for float64
        # storage, ~1e-7 for the default float32.
        for i in (0, 63, 64, 150, 299):
            hit = index.query(vec("r", population[i]), threshold=1e-5)
            assert hit is not None and hit[1] <= 1e-5

    def test_remove_reuses_slots(self):
        index = LinearIndex()
        rng = np.random.default_rng(6)
        population = rng.normal(size=(100, 8))
        for i, v in enumerate(population):
            index.insert(i, vec("r", v))
        for i in range(0, 100, 2):
            index.remove(i)
        assert len(index) == 50
        fresh = rng.normal(size=(50, 8))
        for i, v in enumerate(fresh):
            index.insert(1000 + i, vec("r", v))
        assert len(index) == 100
        for i in range(1, 100, 2):  # odd survivors still found
            hit = index.query(vec("r", population[i]), threshold=1e-5)
            assert hit is not None
        for i, v in enumerate(fresh):  # and so are the reinserts
            hit = index.query(vec("r", v), threshold=1e-5)
            assert hit is not None

    def test_lsh_store_survives_churn(self):
        index = LshIndex(dim=8, n_tables=4, n_bits=4)
        rng = np.random.default_rng(7)
        population = rng.normal(size=(80, 8))
        for i, v in enumerate(population):
            index.insert(i, vec("r", v))
        for i in range(40):
            index.remove(i)
        for i in range(40):
            index.insert(100 + i, vec("r", population[i]))
        assert len(index) == 80
        hit = index.query(vec("r", population[10]), threshold=1e-5)
        assert hit is not None and hit[0] == 110  # the reinserted id


class TestLshCostModel:
    """Regression: lookup pricing must not depend on the previous query."""

    def test_first_lookup_is_not_undercharged(self):
        # Seed bug: cost was priced from the *previous* query's candidate
        # set, so the first lookup after construction charged zero
        # candidates regardless of occupancy.
        index = LshIndex(dim=8, n_tables=2, n_bits=4)
        rng = np.random.default_rng(8)
        for i in range(64):
            index.insert(i, vec("r", rng.normal(size=8)))
        floor = index.BASE_COST_S + index.PER_TABLE_COST_S * index.n_tables
        expected = 2 * 64 / 2 ** 4  # n_tables * n / buckets
        assert index.lookup_cost_s() == pytest.approx(
            floor + index.PER_CANDIDATE_COST_S * expected)
        assert index.lookup_cost_s() > floor

    def test_estimate_is_stateless_across_queries(self):
        index = LshIndex(dim=8, n_tables=4, n_bits=4)
        rng = np.random.default_rng(9)
        for i in range(50):
            index.insert(i, vec("r", rng.normal(size=8)))
        before = index.lookup_cost_s()
        index.query(vec("r", rng.normal(size=8)), threshold=0.5)
        assert index.lookup_cost_s() == before

    def test_query_records_its_own_cost_atomically(self):
        index = LshIndex(dim=8, n_tables=4, n_bits=4)
        rng = np.random.default_rng(10)
        for i in range(50):
            index.insert(i, vec("r", rng.normal(size=8)))
        assert index.last_query_cost_s is None
        index.query(vec("r", rng.normal(size=8)), threshold=0.5)
        assert index.last_query_cost_s == pytest.approx(
            index.BASE_COST_S
            + index.PER_TABLE_COST_S * index.n_tables
            + index.PER_CANDIDATE_COST_S * index.last_candidates)

    def test_expected_candidates_capped_at_occupancy(self):
        index = LshIndex(dim=4, n_tables=8, n_bits=1)  # 2 buckets/table
        rng = np.random.default_rng(11)
        for i in range(10):
            index.insert(i, vec("r", rng.normal(size=4)))
        # Uniform estimate would be 8 * 10 / 2 = 40 > occupancy.
        assert index.lookup_cost_s() <= index._price(10.0)

    def test_n_bits_capped_for_int64_signatures(self):
        with pytest.raises(ValueError):
            LshIndex(dim=4, n_bits=63)


class TestMemoryFootprint:
    """The default store really is float32-sized — a silent regression
    back to float64 storage doubles edge memory and must fail CI."""

    DIM = 64

    def _filled(self, dtype=None):
        index = LinearIndex() if dtype is None else LinearIndex(dtype=dtype)
        rng = np.random.default_rng(11)
        items = [(i, VectorDescriptor("r", rng.normal(size=self.DIM)))
                 for i in range(512)]
        index.insert_batch(items)
        return index

    def test_default_store_is_half_of_float64(self):
        default = self._filled()
        compat = self._filled(dtype="float64")
        assert default._store.compute_dtype == np.dtype(np.float32)
        # float32 matrix+norms are exactly half the float64 bytes; the
        # int32 tag column is shared overhead.  0.55 leaves headroom
        # for bookkeeping while any float64 regression (ratio ~1.0)
        # fails loudly.
        assert default.memory_bytes() <= 0.55 * compat.memory_bytes()

    def test_int8_store_is_quarter_of_float32(self):
        quantized = self._filled(dtype="int8")
        default = self._filled()
        # 1 B codes + per-row float32 scale/offset/norm vs 4 B floats.
        assert quantized.memory_bytes() <= 0.35 * default.memory_bytes()

    def test_ivf_accounts_centroids(self):
        rng = np.random.default_rng(12)
        ivf = IvfIndex(dim=self.DIM)
        items = [(i, VectorDescriptor("r", rng.normal(size=self.DIM)))
                 for i in range(512)]
        ivf.insert_batch(items)
        assert ivf.trained
        linear = self._filled()
        assert ivf.memory_bytes() > linear.memory_bytes()


class TestFusedSegments:
    """The fused core keeps each kind's rows in one contiguous segment."""

    DIM = 8

    def _assert_clustered(self, core):
        tags = core._store.tags
        boundary = 0
        for kind, code in sorted(core._codes.items(), key=lambda kv: kv[1]):
            count = core._counts[code]
            segment = tags[boundary:boundary + count]
            assert (segment == code).all(), (
                f"kind {kind} segment not contiguous: {tags.tolist()}")
            assert core._segment(code) == (boundary, boundary + count)
            boundary += count
        assert boundary == len(core._store)

    def test_interleaved_churn_keeps_segments_contiguous(self):
        rng = np.random.default_rng(5)
        core = FusedLinearCore(dtype="float32")
        views = {k: core.view(k) for k in ("a", "b", "c")}
        entry = 0
        inserted = []
        for round_no in range(6):
            for kind in ("a", "b", "c", "b", "a"):
                views[kind].insert(
                    entry, vec(kind, rng.normal(size=self.DIM)))
                inserted.append((kind, entry))
                entry += 1
                self._assert_clustered(core)
            # A mid-stream batch lands like the same scalar inserts.
            batch = [(entry + j,
                      vec("b", rng.normal(size=self.DIM)))
                     for j in range(3)]
            views["b"].insert_batch(batch)
            inserted.extend(("b", eid) for eid, _ in batch)
            entry += 3
            self._assert_clustered(core)
            # Remove from the middle of an early segment: later
            # segments rotate back and stay contiguous.
            kind, eid = inserted.pop(rng.integers(len(inserted)))
            views[kind].remove(eid)
            self._assert_clustered(core)
        for kind in ("a", "b", "c"):
            assert core.kind_len(core._codes[kind]) == sum(
                1 for k, _ in inserted if k == kind)

    def test_queries_stay_scoped_after_churn(self):
        rng = np.random.default_rng(7)
        core = FusedLinearCore(dtype="float32")
        targets = {}
        for code_kind in ("a", "b", "c"):
            view = core.view(code_kind)
            for j in range(20):
                eid = ord(code_kind) * 1000 + j
                v = rng.normal(size=self.DIM)
                view.insert(eid, vec(code_kind, v))
                targets[(code_kind, j)] = (eid, v)
        core._remove(core._codes["a"], targets[("a", 3)][0])
        core._remove(core._codes["b"], targets[("b", 0)][0])
        for (kind, j), (eid, v) in targets.items():
            if (kind, j) in (("a", 3), ("b", 0)):
                continue
            got = core.view(kind).query(vec(kind, v), threshold=1e-4)
            assert got is not None and got[0] == eid

    def test_multi_query_matches_dedicated_per_kind_indexes(self):
        """Pruned fused answers == dedicated LinearIndex answers."""
        rng = np.random.default_rng(11)
        core = FusedLinearCore(dtype="float32")
        dedicated = {k: LinearIndex(dtype="float32") for k in ("x", "y")}
        for offset, kind in ((0, "x"), (1000, "y")):
            view = core.view(kind)
            for j in range(150):
                v = rng.normal(size=self.DIM)
                if j % 37 == 0:
                    v = np.zeros(self.DIM)  # degenerate rows too
                view.insert(offset + j, vec(kind, v))
                dedicated[kind].insert(offset + j, vec(kind, v))
        kinds, probes = [], []
        for j in range(64):
            kind = "x" if j % 3 else "y"
            base = rng.normal(size=self.DIM)
            if j % 17 == 0:
                base = np.zeros(self.DIM)  # degenerate queries too
            kinds.append(kind)
            probes.append(vec(kind, base))
        fused = core.query_multi(kinds, probes, [0.6] * len(probes))
        for kind in ("x", "y"):
            qrows = [q for q, k in enumerate(kinds) if k == kind]
            expect = dedicated[kind].query_batch(
                [probes[q] for q in qrows], threshold=0.6)
            assert [fused[q] for q in qrows] == expect
