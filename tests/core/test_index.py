"""Unit tests for repro.core.index."""

import numpy as np
import pytest

from repro.core.descriptors import HashDescriptor, VectorDescriptor
from repro.core.index import (
    ExactIndex,
    IndexEntryExists,
    LinearIndex,
    LshIndex,
    make_index,
)


def vec(kind, values):
    return VectorDescriptor(kind, np.asarray(values, dtype=np.float32))


class TestExactIndex:
    def test_insert_query_remove(self):
        index = ExactIndex()
        d = HashDescriptor("m", "aa11")
        index.insert(1, d)
        assert index.query(d, threshold=0.0) == (1, 0.0)
        index.remove(1)
        assert index.query(d, threshold=0.0) is None
        assert len(index) == 0

    def test_duplicate_entry_id_rejected(self):
        index = ExactIndex()
        index.insert(1, HashDescriptor("m", "aa"))
        with pytest.raises(IndexEntryExists):
            index.insert(1, HashDescriptor("m", "bb"))

    def test_duplicate_digest_last_wins(self):
        index = ExactIndex()
        d = HashDescriptor("m", "cc")
        index.insert(1, d)
        index.insert(2, d)
        assert index.query(d, 0.0) == (2, 0.0)
        # Removing the superseded entry must not disturb the winner.
        index.remove(1)
        assert index.query(d, 0.0) == (2, 0.0)

    def test_type_checked(self):
        index = ExactIndex()
        with pytest.raises(TypeError):
            index.insert(1, vec("m", [1.0]))

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            ExactIndex().remove(5)

    def test_constant_lookup_cost(self):
        index = ExactIndex()
        cost_empty = index.lookup_cost_s()
        for i in range(100):
            index.insert(i, HashDescriptor("m", f"{i:x}"))
        assert index.lookup_cost_s() == cost_empty


class TestLinearIndex:
    def test_nearest_within_threshold(self):
        index = LinearIndex()
        index.insert(1, vec("r", [1, 0, 0]))
        index.insert(2, vec("r", [0, 1, 0]))
        hit = index.query(vec("r", [0.9, 0.1, 0]), threshold=0.2)
        assert hit is not None and hit[0] == 1

    def test_miss_outside_threshold(self):
        index = LinearIndex()
        index.insert(1, vec("r", [1, 0, 0]))
        assert index.query(vec("r", [0, 1, 0]), threshold=0.5) is None

    def test_returns_best_not_first(self):
        index = LinearIndex()
        index.insert(1, vec("r", [0.7, 0.7, 0]))
        index.insert(2, vec("r", [1, 0, 0]))
        hit = index.query(vec("r", [0.99, 0.05, 0]), threshold=1.0)
        assert hit[0] == 2

    def test_empty_query(self):
        assert LinearIndex().query(vec("r", [1, 0]), 1.0) is None

    def test_dimension_mismatch(self):
        index = LinearIndex()
        index.insert(1, vec("r", [1, 0, 0]))
        with pytest.raises(ValueError):
            index.insert(2, vec("r", [1, 0]))
        with pytest.raises(ValueError):
            index.query(vec("r", [1, 0]), 1.0)

    def test_remove_rebuilds_scan(self):
        index = LinearIndex()
        index.insert(1, vec("r", [1, 0]))
        index.insert(2, vec("r", [0, 1]))
        index.query(vec("r", [1, 0]), 1.0)  # builds the matrix
        index.remove(1)
        hit = index.query(vec("r", [1, 0]), threshold=2.0)
        assert hit[0] == 2

    def test_cost_grows_with_occupancy(self):
        index = LinearIndex()
        empty_cost = index.lookup_cost_s()
        for i in range(1000):
            index.insert(i, vec("r", [i, 1.0]))
        assert index.lookup_cost_s() > empty_cost


class TestLshIndex:
    @pytest.fixture
    def population(self):
        rng = np.random.default_rng(3)
        vectors = rng.normal(size=(200, 64))
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        return vectors

    def test_finds_near_duplicates(self, population):
        index = LshIndex(dim=64, n_tables=8, n_bits=10)
        for i, v in enumerate(population):
            index.insert(i, vec("r", v))
        rng = np.random.default_rng(4)
        found = 0
        for i in range(50):
            probe = population[i] + rng.normal(0, 0.02, size=64)
            hit = index.query(vec("r", probe), threshold=0.05)
            if hit is not None and hit[0] == i:
                found += 1
        assert found >= 45  # high recall on near-duplicates

    def test_respects_threshold(self, population):
        index = LshIndex(dim=64)
        index.insert(0, vec("r", population[0]))
        # A random unrelated vector must not match a tight threshold.
        assert index.query(vec("r", population[1]), threshold=0.05) is None

    def test_remove(self, population):
        index = LshIndex(dim=64)
        index.insert(0, vec("r", population[0]))
        index.remove(0)
        assert len(index) == 0
        assert index.query(vec("r", population[0]), 0.1) is None

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            LshIndex(dim=8).remove(1)

    def test_dimension_checked(self):
        index = LshIndex(dim=16)
        with pytest.raises(ValueError):
            index.insert(0, vec("r", np.ones(8)))

    def test_deterministic_planes(self, population):
        a = LshIndex(dim=64, seed=9)
        b = LshIndex(dim=64, seed=9)
        for i, v in enumerate(population[:20]):
            a.insert(i, vec("r", v))
            b.insert(i, vec("r", v))
        probe = vec("r", population[0])
        assert a.query(probe, 0.1) == b.query(probe, 0.1)


class TestMakeIndex:
    def test_specs(self):
        assert isinstance(make_index("exact"), ExactIndex)
        assert isinstance(make_index("linear"), LinearIndex)
        assert isinstance(make_index("lsh", dim=32), LshIndex)
        custom = make_index("lsh:4:6", dim=32)
        assert custom.n_tables == 4 and custom.n_bits == 6

    def test_bad_specs(self):
        with pytest.raises(ValueError):
            make_index("btree")
        with pytest.raises(ValueError):
            make_index("lsh:4")


class TestQueryBatch:
    """query_batch must agree element-wise with sequential query calls."""

    def _fill(self, index, vectors):
        for i, v in enumerate(vectors):
            index.insert(i, vec("r", v))

    def test_empty_batch(self):
        assert LinearIndex().query_batch([], 0.5) == []
        assert LshIndex(dim=4).query_batch([], 0.5) == []
        assert ExactIndex().query_batch([], 0.5) == []

    def test_batch_on_empty_index(self):
        probes = [vec("r", [1, 0]), vec("r", [0, 1])]
        assert LinearIndex().query_batch(probes, 2.0) == [None, None]
        assert LshIndex(dim=2).query_batch(probes, 2.0) == [None, None]

    def test_linear_batch_matches_sequential(self):
        rng = np.random.default_rng(11)
        population = rng.normal(size=(60, 16))
        index = LinearIndex()
        self._fill(index, population)
        probes = [vec("r", population[i] + rng.normal(0, 0.05, 16))
                  for i in range(20)]
        probes += [vec("r", rng.normal(size=16)) for _ in range(10)]
        batch = index.query_batch(probes, threshold=0.05)
        sequential = [index.query(p, threshold=0.05) for p in probes]
        assert len(batch) == len(sequential)
        for got, want in zip(batch, sequential):
            assert (got is None) == (want is None)
            if got is not None:
                assert got[0] == want[0]
                assert got[1] == pytest.approx(want[1], abs=1e-9)

    def test_lsh_batch_matches_sequential(self):
        rng = np.random.default_rng(12)
        population = rng.normal(size=(120, 32))
        population /= np.linalg.norm(population, axis=1, keepdims=True)
        index = LshIndex(dim=32, n_tables=6, n_bits=8)
        self._fill(index, population)
        probes = [vec("r", population[i] + rng.normal(0, 0.02, 32))
                  for i in range(30)]
        batch = index.query_batch(probes, threshold=0.05)
        sequential = [index.query(p, threshold=0.05) for p in probes]
        for got, want in zip(batch, sequential):
            assert (got is None) == (want is None)
            if got is not None:
                assert got[0] == want[0]
                assert got[1] == pytest.approx(want[1], abs=1e-9)

    def test_exact_batch_uses_sequential_fallback(self):
        index = ExactIndex()
        index.insert(1, HashDescriptor("m", "aa"))
        got = index.query_batch(
            [HashDescriptor("m", "aa"), HashDescriptor("m", "bb")], 0.0)
        assert got == [(1, 0.0), None]


class TestContiguousStore:
    """Amortized growth and swap-compacted removal, via the public API."""

    def test_growth_beyond_initial_capacity(self):
        index = LinearIndex()
        rng = np.random.default_rng(5)
        population = rng.normal(size=(300, 8))
        for i, v in enumerate(population):
            index.insert(i, vec("r", v))
        assert len(index) == 300
        # Every stored vector is still retrievable post-doubling.
        for i in (0, 63, 64, 150, 299):
            hit = index.query(vec("r", population[i]), threshold=1e-9)
            assert hit is not None and hit[1] <= 1e-6

    def test_remove_reuses_slots(self):
        index = LinearIndex()
        rng = np.random.default_rng(6)
        population = rng.normal(size=(100, 8))
        for i, v in enumerate(population):
            index.insert(i, vec("r", v))
        for i in range(0, 100, 2):
            index.remove(i)
        assert len(index) == 50
        fresh = rng.normal(size=(50, 8))
        for i, v in enumerate(fresh):
            index.insert(1000 + i, vec("r", v))
        assert len(index) == 100
        for i in range(1, 100, 2):  # odd survivors still found
            hit = index.query(vec("r", population[i]), threshold=1e-9)
            assert hit is not None
        for i, v in enumerate(fresh):  # and so are the reinserts
            hit = index.query(vec("r", v), threshold=1e-9)
            assert hit is not None

    def test_lsh_store_survives_churn(self):
        index = LshIndex(dim=8, n_tables=4, n_bits=4)
        rng = np.random.default_rng(7)
        population = rng.normal(size=(80, 8))
        for i, v in enumerate(population):
            index.insert(i, vec("r", v))
        for i in range(40):
            index.remove(i)
        for i in range(40):
            index.insert(100 + i, vec("r", population[i]))
        assert len(index) == 80
        hit = index.query(vec("r", population[10]), threshold=1e-9)
        assert hit is not None and hit[0] == 110  # the reinserted id


class TestLshCostModel:
    """Regression: lookup pricing must not depend on the previous query."""

    def test_first_lookup_is_not_undercharged(self):
        # Seed bug: cost was priced from the *previous* query's candidate
        # set, so the first lookup after construction charged zero
        # candidates regardless of occupancy.
        index = LshIndex(dim=8, n_tables=2, n_bits=4)
        rng = np.random.default_rng(8)
        for i in range(64):
            index.insert(i, vec("r", rng.normal(size=8)))
        floor = index.BASE_COST_S + index.PER_TABLE_COST_S * index.n_tables
        expected = 2 * 64 / 2 ** 4  # n_tables * n / buckets
        assert index.lookup_cost_s() == pytest.approx(
            floor + index.PER_CANDIDATE_COST_S * expected)
        assert index.lookup_cost_s() > floor

    def test_estimate_is_stateless_across_queries(self):
        index = LshIndex(dim=8, n_tables=4, n_bits=4)
        rng = np.random.default_rng(9)
        for i in range(50):
            index.insert(i, vec("r", rng.normal(size=8)))
        before = index.lookup_cost_s()
        index.query(vec("r", rng.normal(size=8)), threshold=0.5)
        assert index.lookup_cost_s() == before

    def test_query_records_its_own_cost_atomically(self):
        index = LshIndex(dim=8, n_tables=4, n_bits=4)
        rng = np.random.default_rng(10)
        for i in range(50):
            index.insert(i, vec("r", rng.normal(size=8)))
        assert index.last_query_cost_s is None
        index.query(vec("r", rng.normal(size=8)), threshold=0.5)
        assert index.last_query_cost_s == pytest.approx(
            index.BASE_COST_S
            + index.PER_TABLE_COST_S * index.n_tables
            + index.PER_CANDIDATE_COST_S * index.last_candidates)

    def test_expected_candidates_capped_at_occupancy(self):
        index = LshIndex(dim=4, n_tables=8, n_bits=1)  # 2 buckets/table
        rng = np.random.default_rng(11)
        for i in range(10):
            index.insert(i, vec("r", rng.normal(size=4)))
        # Uniform estimate would be 8 * 10 / 2 = 40 > occupancy.
        assert index.lookup_cost_s() <= index._price(10.0)

    def test_n_bits_capped_for_int64_signatures(self):
        with pytest.raises(ValueError):
            LshIndex(dim=4, n_bits=63)
