"""Tests for repro.core.cluster (scenario builder, handoff, mobility).

Includes the seed-equivalence suite: fixed workloads whose
``MetricsRecorder`` output was digested on the pre-refactor
``CoICDeployment`` / ``FederatedDeployment`` constructors.  The facades
must keep producing byte-identical records (floats compared via their
exact hex form).
"""

import hashlib

import pytest

from repro.core import CoICConfig, CoICDeployment
from repro.core.cluster import ClusterDeployment
from repro.core.federation import FederatedDeployment, FederatedEdgeNode
from repro.core.scenario import (
    ClientSpec,
    EdgeSpec,
    InterEdgeLinkSpec,
    MobilitySpec,
    ScenarioSpec,
    WarmupSpec,
)


def recorder_digest(recorder) -> str:
    """A byte-exact fingerprint of every record's observable fields."""
    blob = repr([(r.task_kind, r.outcome, r.user, r.start_s.hex(),
                  r.end_s.hex(), r.correct) for r in recorder.records])
    return hashlib.sha256(blob.encode()).hexdigest()


# Digests captured on the pre-refactor constructors (commit cb4e7b1)
# for the exact workloads below.
GOLDEN_SINGLE = \
    "eca8545032b4bafc20bd01be45354bfe7287f1289316cff25b6c97cce4a2a0a4"
GOLDEN_FEDERATED = \
    "302d95e0068590dd121eb8c06a411f521eb61f4c5134872ed4f809766fc13a73"
GOLDEN_ISOLATED = \
    "3d47f2dbde86530e6738ba3807d6d3b17cf34af01623eaef15e9be4a4cefc908"


class TestSeedEquivalence:
    def test_single_edge_facade_matches_pre_refactor(self):
        cfg = CoICConfig(seed=3)
        cfg.network.wifi_mbps = 100
        cfg.network.backhaul_mbps = 10
        dep = CoICDeployment(cfg, n_clients=2)
        dep.run_tasks(dep.clients[0],
                      [dep.recognition_task(5, viewpoint=-0.2)])
        dep.run_tasks(dep.clients[1],
                      [dep.recognition_task(5, viewpoint=0.2)])
        dep.run_tasks(dep.clients[0], [dep.model_load_task(0)])
        dep.env.run()
        dep.run_tasks(dep.clients[1], [dep.model_load_task(0)])
        dep.run_tasks(dep.clients[0], [dep.panorama_task(1, 2)])
        dep.run_tasks(dep.origin_clients[0], [dep.recognition_task(9)])
        dep.run_tasks(dep.local_clients[1], [dep.recognition_task(4)])
        dep.run_concurrent([
            (0.0, dep.clients[0], dep.recognition_task(5, viewpoint=0.0)),
            (0.001, dep.clients[1], dep.recognition_task(5, viewpoint=0.1)),
        ])
        assert recorder_digest(dep.recorder) == GOLDEN_SINGLE

    def test_federated_facade_matches_pre_refactor(self):
        cfg = CoICConfig(seed=7)
        cfg.network.wifi_mbps = 100
        cfg.network.backhaul_mbps = 10
        fed = FederatedDeployment(cfg, n_edges=3, clients_per_edge=2,
                                  metro_delay_ms=2.0)
        fed.run_tasks(fed.clients[0][0], [fed.model_load_task(0)])
        fed.env.run()
        fed.run_tasks(fed.clients[1][0], [fed.model_load_task(0)])
        fed.run_tasks(fed.clients[0][1],
                      [fed.recognition_task(7, viewpoint=-0.2)])
        fed.env.run()
        fed.run_tasks(fed.clients[2][1],
                      [fed.recognition_task(7, viewpoint=0.2)])
        fed.run_tasks(fed.clients[2][0], [fed.panorama_task(0, 4)])
        fed.env.run()
        fed.run_tasks(fed.clients[1][1], [fed.panorama_task(0, 4)])
        assert recorder_digest(fed.recorder) == GOLDEN_FEDERATED

    def test_isolated_facade_matches_pre_refactor(self):
        fed = FederatedDeployment(CoICConfig(seed=7), n_edges=2,
                                  federate=False)
        fed.run_tasks(fed.clients[0][0], [fed.model_load_task(1)])
        fed.env.run()
        fed.run_tasks(fed.clients[1][0], [fed.model_load_task(1)])
        assert recorder_digest(fed.recorder) == GOLDEN_ISOLATED


# The full default-policy metro scenario (4 federated edges, moving
# users, closed-loop recognition traffic) digested at commit b83e558
# (pre-layer-reuse).  Unlike the CoIC/federated seeds above this
# workload exercises mobility, handoff and federation peer probes in
# one run, so *any* stage-chain edit that perturbs default behaviour —
# not just the facade paths — fails loudly here.
GOLDEN_METRO = \
    "822117df5d52f71e831f00081604d6be36be4e2ae372adb443d836195b6f6033"


def default_metro_deployment(make_deployment, policy=None, config=None):
    mobility = MobilitySpec(n_places=16, mean_dwell_s=8.0,
                            duration_s=60.0, handoff_latency_s=0.05)
    spec = ScenarioSpec.metro(n_edges=4, clients_per_edge=1,
                              federate=True, mobility=mobility,
                              policy=policy)
    return make_deployment(spec=spec, config=config)


def default_metro_digest(make_deployment, policy=None, config=None) -> str:
    from repro.eval.experiments.mobility_exp import drive_scenario

    dep = default_metro_deployment(make_deployment, policy=policy,
                                   config=config)
    drive_scenario(dep, 60.0, request_interval_s=2.0)
    return recorder_digest(dep.recorder)


class TestMetroGoldenDigest:
    def test_default_metro_matches_pre_layer_reuse(self, make_deployment):
        assert default_metro_digest(make_deployment) == GOLDEN_METRO

    def test_inert_policy_is_byte_identical_to_no_policy(
            self, make_deployment):
        # EdgePolicySpec() — admission off, offload off, prewarm off,
        # layer_reuse=False — must not perturb the default chain: the
        # knobs added by the overload/affinity/layer-reuse layers only
        # act when switched on.
        from repro.core.scenario import EdgePolicySpec

        assert default_metro_digest(
            make_deployment, policy=EdgePolicySpec()) == GOLDEN_METRO

    def test_all_free_open_market_is_byte_identical(self,
                                                    make_deployment):
        # Declaring operators with zero prices and open consent wires
        # the FederationBroker into every probe order — and must not
        # move a byte: the broker filters and bills, it never re-ranks,
        # and an open market filters nothing and bills zero.
        from repro.core.scenario import OperatorSpec
        from repro.eval.experiments.mobility_exp import drive_scenario

        mobility = MobilitySpec(n_places=16, mean_dwell_s=8.0,
                                duration_s=60.0, handoff_latency_s=0.05)
        spec = ScenarioSpec.metro(n_edges=4, clients_per_edge=1,
                                  federate=True, mobility=mobility)
        spec = spec.with_operators(
            (OperatorSpec(name="metroA"), OperatorSpec(name="metroB")),
            {"edge0": "metroA", "edge1": "metroA",
             "edge2": "metroB", "edge3": "metroB"})
        dep = make_deployment(spec=spec)
        drive_scenario(dep, 60.0, request_interval_s=2.0)
        assert recorder_digest(dep.recorder) == GOLDEN_METRO
        # The market really was on the path: the broker exists and the
        # cross-operator probes settled (at price zero).
        assert dep.broker is not None
        assert all(edge.broker is dep.broker for edge in dep.edges)
        assert all(entry.price == 0.0 for entry in dep.recorder.ledger)

    def test_explicit_float64_compat_is_byte_identical(
            self, make_deployment, make_config):
        # Spelling out the compatibility dtype must be a no-op: the
        # deployment default *is* float64 storage, and the fused linear
        # core reproduces the historical per-kind arithmetic exactly.
        config = make_config()
        config.cache.vector_dtype = "float64"
        assert default_metro_digest(make_deployment,
                                    config=config) == GOLDEN_METRO

    def test_threaded_lookup_fanout_is_byte_identical(
            self, make_deployment, make_config):
        # lookup_threads routes every same-tick batch lookup through
        # the TickLookupFanout thread pool; telemetry must stay
        # byte-identical to the sequential run.
        from repro.eval.experiments.mobility_exp import drive_scenario

        config = make_config()
        config.lookup_threads = 2
        dep = default_metro_deployment(make_deployment, config=config)
        drive_scenario(dep, 60.0, request_interval_s=2.0)
        assert recorder_digest(dep.recorder) == GOLDEN_METRO
        # The fanout really was on the path: every flushed batch from
        # every edge went through a wave.
        assert dep.lookup_fanout is not None
        assert dep.lookup_fanout.waves > 0
        assert dep.lookup_fanout.fanned_out == \
            sum(edge.lookup_batches for edge in dep.edges)


class TestPolicyIndexOverrides:
    def test_policy_overrides_reach_every_cache(self, make_deployment):
        from repro.core.scenario import EdgePolicySpec

        dep = make_deployment(policy=EdgePolicySpec(
            vector_index="ivf:16:4", vector_dtype="float32"))
        for cache in dep.caches:
            assert cache.vector_dtype == "float32"
            assert cache._vector_index_spec == "ivf:16:4"

    def test_empty_overrides_inherit_config(self, make_deployment):
        from repro.core.scenario import EdgePolicySpec

        dep = make_deployment(policy=EdgePolicySpec())
        for cache in dep.caches:
            assert cache.vector_dtype == "float64"
            assert cache._vector_index_spec == "linear"


class TestFacadeShape:
    def test_coic_deployment_is_a_cluster(self):
        dep = CoICDeployment(n_clients=2)
        assert isinstance(dep, ClusterDeployment)
        assert dep.cache is dep.caches[0]
        assert dep.edge is dep.edges[0]
        assert dep.clients == dep.clients_by_edge[0]
        assert dep.backhaul_up is dep.backhaul["edge"][0]

    def test_federated_deployment_is_a_cluster(self):
        fed = FederatedDeployment(n_edges=2, clients_per_edge=2)
        assert isinstance(fed, ClusterDeployment)
        assert fed.clients is fed.clients_by_edge
        assert len(fed.all_clients) == 4
        # The shared driver mixin now gives federated deployments
        # run_concurrent too.
        fed.run_concurrent([
            (0.0, fed.clients[0][0], fed.recognition_task(1)),
            (0.0, fed.clients[1][0], fed.recognition_task(2)),
        ])
        assert len(fed.recorder.records) == 2


def line_spec(federate=True, peers=None):
    """edge0 -- edge1 -- edge2: a non-mesh inter-edge graph."""
    edges = tuple(
        EdgeSpec(name=f"edge{k}", clients=(ClientSpec(name=f"m{k}"),),
                 x=100.0 * k, y=0.0,
                 peers=peers[k] if peers is not None else None)
        for k in range(3))
    inter = (InterEdgeLinkSpec(a="edge0", b="edge1", delay_ms=2.0),
             InterEdgeLinkSpec(a="edge1", b="edge2", delay_ms=2.0))
    return ScenarioSpec(edges=edges, inter_edge=inter, federate=federate)


class TestArbitraryGraphs:
    def test_line_graph_routes_multi_hop(self):
        dep = ClusterDeployment(line_spec())
        assert dep.topology.shortest_path("edge0", "edge2") == \
            ["edge0", "edge1", "edge2"]

    def test_peer_probe_over_multi_hop_route(self):
        # edge2's only peer is edge0, two metro hops away: the probe is
        # routed through edge1 by Dijkstra, no direct link needed.
        spec = line_spec(peers=(("edge1",), ("edge0",), ("edge0",)))
        dep = ClusterDeployment(spec)
        task = dep.model_load_task(0)
        dep.run_tasks(dep.client_by_name["m0"], [task])
        dep.env.run()
        record = dep.run_tasks(dep.client_by_name["m2"], [task])[0]
        assert record.outcome == "hit"
        assert dep.edges[2].peer_hits == 1

    def test_isolated_cluster_builds_plain_edges(self):
        dep = ClusterDeployment(line_spec(federate=False))
        assert not any(isinstance(e, FederatedEdgeNode) for e in dep.edges)


class TestHandoff:
    def test_handoff_moves_attachment_and_links(self):
        dep = ClusterDeployment(line_spec())
        client = dep.client_by_name["m0"]
        dep.env.run(until=dep.env.process(
            dep.handoff(client, "edge2", latency_s=0.1)))
        dep.env.run()
        assert client.edge_name == "edge2"
        assert client.attachments == [(0.0, "edge0"), (0.1, "edge2")]
        assert len(dep.handoff_log) == 1
        event = dep.handoff_log[0]
        assert (event.src_edge, event.dst_edge) == ("edge0", "edge2")
        assert event.completed_s == pytest.approx(0.1)
        # Old access link torn down, new one up.
        up, down = dep.access_links[("m0", "edge0")]
        assert not up.up and not down.up
        new_up, new_down = dep.access_links[("m0", "edge2")]
        assert new_up.up and new_down.up

    def test_requests_stall_through_the_attach_gate(self):
        dep = ClusterDeployment(line_spec())
        client = dep.client_by_name["m0"]
        dep.env.process(dep.handoff(client, "edge1", latency_s=0.5))
        record = dep.run_tasks(client, [dep.recognition_task(1)])[0]
        # Issued mid-handoff: the dead time is part of the latency and
        # the request is served by the new edge.
        assert record.latency_s >= 0.5
        assert record.outcome in ("hit", "miss")
        assert client.edge_name == "edge1"

    def test_inflight_request_completes_against_old_edge(self):
        dep = ClusterDeployment(line_spec())
        client = dep.client_by_name["m0"]
        # Start the request first, then the handoff on the same tick:
        # the in-flight exchange must complete over the old link.
        request = dep.env.process(client.perform(dep.recognition_task(2)))

        def later():
            yield dep.env.timeout(1e-4)
            yield from dep.handoff(client, "edge1", latency_s=0.01)

        dep.env.process(later())
        dep.env.run(until=request)
        dep.env.run()
        record = dep.recorder.records[0]
        assert record.outcome in ("hit", "miss")  # not an error
        assert client.edge_name == "edge1"

    def test_response_to_unreachable_client_is_dropped(self):
        # City-scale race: a client blows its deadline and hands off,
        # the drained downlink is torn down, and the edge's response
        # (plus its error-respond fallback) hits a dead link.  The edge
        # must count a dropped response, not crash the simulation.
        dep = ClusterDeployment(line_spec(federate=False))
        client = dep.client_by_name["m0"]
        dep.topology.link("edge0", "m0").set_up(False)
        record = dep.run_tasks(client, [dep.recognition_task(1)])[0]
        assert record.outcome == "error"
        assert dep.edges[0].responses_dropped >= 1

    def test_handoff_to_same_edge_is_noop(self):
        dep = ClusterDeployment(line_spec())
        client = dep.client_by_name["m0"]
        dep.env.run(until=dep.env.process(dep.handoff(client, "edge0")))
        assert dep.handoff_log == []
        assert client.attachments == [(0.0, "edge0")]

    def test_unknown_edge_rejected(self):
        dep = ClusterDeployment(line_spec())
        with pytest.raises(KeyError):
            next(dep.handoff(dep.client_by_name["m0"], "edge99"))


def metro_spec(seed_places=16, federate=True, warmup=None):
    mobility = MobilitySpec(n_places=seed_places, mean_dwell_s=10.0,
                            duration_s=60.0, handoff_latency_s=0.05)
    return ScenarioSpec.metro(n_edges=4, clients_per_edge=1,
                              federate=federate, mobility=mobility,
                              warmup=warmup)


class TestMobility:
    def test_itineraries_drive_handoffs(self, make_deployment):
        dep = make_deployment(spec=metro_spec())
        dep.start_mobility()
        dep.run_for(60.0)
        per_client = {name: 0 for name in dep.client_names}
        for event in dep.handoff_log:
            per_client[event.client] += 1
        assert min(per_client.values()) >= 1
        timeline = dep.attachment_timeline()
        # Initial attachments for everyone plus one entry per handoff.
        assert len(timeline) == len(dep.client_names) + len(dep.handoff_log)

    def test_same_seed_same_attachment_timeline(self, make_deployment):
        def run_once():
            dep = make_deployment(spec=metro_spec())
            dep.start_mobility()
            dep.run_for(60.0)
            return dep.attachment_timeline(), recorder_digest(dep.recorder)

        first_timeline, first_digest = run_once()
        second_timeline, second_digest = run_once()
        assert first_timeline == second_timeline
        assert first_digest == second_digest
        assert len(first_timeline) > len(
            make_deployment(spec=metro_spec()).client_names)

    def test_different_seed_different_timeline(self, make_deployment):
        def timeline(seed):
            dep = make_deployment(spec=metro_spec(), seed=seed)
            dep.start_mobility()
            dep.run_for(60.0)
            return dep.attachment_timeline()

        assert timeline(0) != timeline(1)

    def test_mobility_requires_spec(self):
        dep = ClusterDeployment(line_spec())
        with pytest.raises(ValueError):
            dep.start_mobility()

    def test_mobility_cannot_start_twice(self, make_deployment):
        dep = make_deployment(spec=metro_spec())
        dep.start_mobility()
        with pytest.raises(RuntimeError):
            dep.start_mobility()


class TestWarmupAndSync:
    def test_warmup_turns_first_request_into_a_hit(self, make_deployment):
        warmup = WarmupSpec(classes=(3,), models=(0,))
        spec = ScenarioSpec.federated(n_edges=2)
        spec = ScenarioSpec.from_dict({**spec.to_dict(),
                                       "warmup": warmup.to_dict()})
        dep = make_deployment(spec=spec)
        assert all(len(cache) == 2 for cache in dep.caches)
        record = dep.run_tasks(dep.clients_by_edge[0][0],
                               [dep.recognition_task(3, viewpoint=0.1)])[0]
        assert record.outcome == "hit"
        load = dep.run_tasks(dep.clients_by_edge[1][0],
                             [dep.model_load_task(0)])[0]
        assert load.outcome == "hit"

    def test_warmup_respects_edge_filter(self, make_deployment):
        warmup = WarmupSpec(classes=(1, 2), edges=("edge0",))
        spec = ScenarioSpec.from_dict({
            **ScenarioSpec.federated(n_edges=2).to_dict(),
            "warmup": warmup.to_dict()})
        dep = make_deployment(spec=spec)
        assert len(dep.caches[0]) == 2
        assert len(dep.caches[1]) == 0

    def test_sync_federation_diffuses_and_dedups(self, make_deployment):
        spec = ScenarioSpec.from_dict({
            **ScenarioSpec.federated(n_edges=3).to_dict(),
            "warmup": WarmupSpec(classes=(1, 2), models=(0,),
                                 edges=("edge0",)).to_dict()})
        dep = make_deployment(spec=spec)
        copied = dep.sync_federation()
        assert copied == 6  # 3 entries to each of 2 empty edges
        assert all(len(cache) == 3 for cache in dep.caches)
        # A second sync finds nothing new anywhere.
        assert dep.sync_federation() == 0


def mixed_access_spec():
    edges = (EdgeSpec(name="edge0",
                      clients=(ClientSpec(name="lte0", access="lte"),
                               ClientSpec(name="wifi0"))),
             EdgeSpec(name="edge1"))
    inter = (InterEdgeLinkSpec(a="edge0", b="edge1", delay_ms=2.0),)
    return ScenarioSpec(edges=edges, inter_edge=inter)


class TestLteAccess:
    def test_lte_clients_get_asymmetric_epc_links(self, make_deployment):
        dep = make_deployment(spec=mixed_access_spec())
        net = dep.config.network
        uplink, downlink = dep.access_links[("lte0", "edge0")]
        assert uplink.bandwidth_bps == net.lte_uplink_mbps * 1e6
        assert downlink.bandwidth_bps == net.lte_downlink_mbps * 1e6
        # Radio + EPC core traversal, not the WiFi ~1 ms.
        expected = (net.lte_radio_delay_ms + net.lte_core_delay_ms) / 1e3
        assert uplink.propagation_s == pytest.approx(expected)
        wifi_up, wifi_down = dep.access_links[("wifi0", "edge0")]
        assert wifi_up.bandwidth_bps == net.wifi_mbps * 1e6

    def test_lte_round_trip_is_slower_than_wifi(self, make_deployment):
        dep = make_deployment(spec=mixed_access_spec())
        lte = dep.run_tasks(dep.client_by_name["lte0"],
                            [dep.recognition_task(1, viewpoint=0.0)])[0]
        dep.env.run()
        wifi = dep.run_tasks(dep.client_by_name["wifi0"],
                             [dep.recognition_task(2, viewpoint=0.0)])[0]
        assert lte.outcome == "miss" and wifi.outcome == "miss"
        # Same edge, same cloud path; the EPC core latency and the thin
        # uplink make the LTE user strictly slower.
        assert lte.latency_s > wifi.latency_s

    def test_handoff_preserves_access_technology(self, make_deployment):
        dep = make_deployment(spec=mixed_access_spec())
        client = dep.client_by_name["lte0"]
        dep.env.run(until=dep.env.process(
            dep.handoff(client, "edge1", latency_s=0.1)))
        dep.env.run()
        uplink, downlink = dep.access_links[("lte0", "edge1")]
        net = dep.config.network
        assert uplink.bandwidth_bps == net.lte_uplink_mbps * 1e6
        assert downlink.bandwidth_bps == net.lte_downlink_mbps * 1e6


def traced_metro_spec(trace, **mobility_kwargs):
    mobility = MobilitySpec(n_places=16, mean_dwell_s=10.0,
                            duration_s=60.0, handoff_latency_s=0.05,
                            itinerary_trace=trace, **mobility_kwargs)
    return ScenarioSpec.metro(n_edges=4, clients_per_edge=1,
                              federate=True, mobility=mobility)


class TestItineraryTrace:
    def test_traced_client_replays_verbatim(self, make_deployment):
        trace = {"mobile0_0": [[0.0, 1], [5.0, 9], [30.0, 2]]}
        dep = make_deployment(spec=traced_metro_spec(trace))
        itineraries = dep.start_mobility()
        assert itineraries["mobile0_0"] == [(0.0, 1), (5.0, 9), (30.0, 2)]
        # The traced client gets no synthetic user; the others do.
        assert "mobile0_0" not in dep.users
        assert set(dep.users) == set(dep.client_names) - {"mobile0_0"}

    def test_fully_traced_scenario_creates_no_users(self, make_deployment):
        trace = {name: [[0.0, i]] for i, name in enumerate(
            f"mobile{k}_0" for k in range(4))}
        dep = make_deployment(spec=traced_metro_spec(trace))
        dep.start_mobility()
        assert dep.users == {}
        dep.run_for(60.0)  # replay runs to completion without synthesis

    def test_unknown_client_in_trace_rejected(self, make_deployment):
        dep = make_deployment(
            spec=traced_metro_spec({"nobody": [[0.0, 0]]}))
        with pytest.raises(ValueError, match="nobody"):
            dep.start_mobility()

    def test_trace_places_validated_against_world(self, make_deployment):
        dep = make_deployment(
            spec=traced_metro_spec({"mobile0_0": [[0.0, 99]]}))
        with pytest.raises(ValueError):
            dep.start_mobility()


class TestBackgroundTraffic:
    def test_backhaul_links_follow_the_diurnal_curve(self, make_deployment):
        from repro.core.scenario import BackgroundTrafficSpec

        background = BackgroundTrafficSpec(period_s=40.0, peak_util=0.5,
                                           update_s=10.0)
        spec = ScenarioSpec.metro(n_edges=2, clients_per_edge=1,
                                  background=background)
        dep = make_deployment(spec=spec)
        nominal = {link: link.bandwidth_bps
                   for pair in dep.backhaul.values() for link in pair}
        dep.run_for(21.0)
        # Last update at t=20 = period/2: the curve peaks (level=1.0),
        # leaving residual 1 - peak_util = 50% of nominal.
        for link, bps in nominal.items():
            assert link.bandwidth_bps == pytest.approx(0.5 * bps)
        assert len(dep.shaper.changes) >= 3 * len(nominal)

    def test_inter_edge_scope_spares_the_backhaul(self, make_deployment):
        from repro.core.scenario import BackgroundTrafficSpec

        background = BackgroundTrafficSpec(period_s=40.0, peak_util=0.5,
                                           update_s=10.0,
                                           scope="inter_edge")
        spec = ScenarioSpec.metro(n_edges=2, clients_per_edge=1,
                                  background=background)
        dep = make_deployment(spec=spec)
        backhaul_nominal = {link: link.bandwidth_bps
                            for pair in dep.backhaul.values()
                            for link in pair}
        mesh_nominal = {link: link.bandwidth_bps
                        for pair in dep.inter_edge_links.values()
                        for link in pair}
        dep.run_for(21.0)
        for link, bps in backhaul_nominal.items():
            assert link.bandwidth_bps == bps
        for link, bps in mesh_nominal.items():
            assert link.bandwidth_bps == pytest.approx(0.5 * bps)

    def test_no_background_means_no_rate_changes(self, make_deployment):
        spec = ScenarioSpec.metro(n_edges=2, clients_per_edge=1)
        dep = make_deployment(spec=spec)
        dep.run_for(21.0)
        assert dep.shaper.changes == []
