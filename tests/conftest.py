"""Shared test fixtures: scenario factories and a fixed hypothesis profile.

The scenario-construction blob the core tests kept re-typing — a
``CoICConfig`` with the 100/10 Mbps test network plus a small cluster of
linked edges — lives here once, as factory fixtures:

* ``make_spec``    — a linked-edges :class:`ScenarioSpec` (full-mesh
  inter-edge graph, named clients per edge, optional policy/warmup).
* ``make_deployment`` — a :class:`ClusterDeployment` over such a spec
  with the standard test config (or any config/seed override).
* ``seeded_rng``   — independent ``numpy`` generators for tests that
  need their own deterministic randomness.

The hypothesis profile lives in ``tests/property/conftest.py`` so this
file stays importable without hypothesis installed — only the property
suite needs it.
"""

import numpy as np
import pytest

from repro.core.cluster import ClusterDeployment
from repro.core.config import CoICConfig
from repro.core.scenario import (
    ClientSpec,
    EdgeSpec,
    InterEdgeLinkSpec,
    ScenarioSpec,
)


@pytest.fixture
def make_spec():
    """Factory for the small linked-edges scenario the core tests use.

    ``clients`` gives each edge its client names: edge ``k`` is called
    ``edge{k}`` and carries ``clients[k]``.  The inter-edge graph is a
    full mesh (one duplex link for the common two-edge case), matching
    the hand-written specs this fixture replaced.
    """

    def factory(clients=(("m0", "m1"), ("far0",)), policy=None,
                warmup=None, inter_edge=True):
        edges = tuple(
            EdgeSpec(name=f"edge{k}",
                     clients=tuple(ClientSpec(name=name) for name in row))
            for k, row in enumerate(clients))
        links = ()
        if inter_edge:
            links = tuple(
                InterEdgeLinkSpec(a=a.name, b=b.name)
                for i, a in enumerate(edges) for b in edges[i + 1:])
        return ScenarioSpec(edges=edges, inter_edge=links,
                            warmup=warmup, policy=policy)

    return factory


@pytest.fixture
def make_config():
    """Factory for the standard test config: seeded, 100/10 Mbps net."""

    def factory(seed=0, wifi_mbps=100.0, backhaul_mbps=10.0,
                edge_workers=None):
        config = CoICConfig(seed=seed)
        config.network.wifi_mbps = wifi_mbps
        config.network.backhaul_mbps = backhaul_mbps
        if edge_workers is not None:
            config.edge_workers = edge_workers
        return config

    return factory


@pytest.fixture
def make_deployment(make_spec, make_config):
    """Factory for a deployment over the standard 100/10 Mbps test net.

    Builds ``spec`` (or one from ``make_spec(**spec_kwargs)``) with a
    ``CoICConfig`` shaped like the blob the core tests duplicated:
    seeded, 100 Mbps WiFi, 10 Mbps backhaul, optional worker override.
    Pass ``config=`` to take over config construction entirely.
    """

    def factory(spec=None, seed=0, wifi_mbps=100.0, backhaul_mbps=10.0,
                edge_workers=None, config=None, **spec_kwargs):
        if config is None:
            config = make_config(seed=seed, wifi_mbps=wifi_mbps,
                                 backhaul_mbps=backhaul_mbps,
                                 edge_workers=edge_workers)
        if spec is None:
            spec = make_spec(**spec_kwargs)
        return ClusterDeployment(spec, config=config)

    return factory


@pytest.fixture
def seeded_rng():
    """Factory for independent, deterministic numpy generators."""

    def factory(seed=0):
        return np.random.Generator(np.random.PCG64(seed))

    return factory
