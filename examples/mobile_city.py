#!/usr/bin/env python3
"""A city on the move: four edges, wandering users, mid-run handoff.

Four edge sites cover a 1 km^2 metro grid; eight AR users wander between
points of interest on random-waypoint itineraries, recognizing landmarks
as they go.  Every time a user crosses a cell boundary the scenario
layer hands their client off to the nearest edge — tearing down and
re-establishing the WiFi link with a configurable dead time while
in-flight requests finish against the old edge.

With isolated edges, every handoff lands the user on a cache that has
never seen them.  With federation, the new edge pulls their content from
the previous one over the metro link — content follows the user.

Expected output: an isolated-vs-federated table where federation lifts
the recognition hit ratio and trims mean latency despite identical
itineraries, followed by per-user handoff counts and the number of
lookups a neighbour edge answered.

Run:  python examples/mobile_city.py
"""

import os
from collections import Counter

from repro.core import CoICConfig
from repro.eval import format_table
from repro.eval.experiments.mobility_exp import build_metro, drive_scenario

DURATION_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "180"))
HANDOFF_MS = 50.0


def run(federate: bool):
    config = CoICConfig(seed=0)
    config.network.wifi_mbps = 100
    config.network.backhaul_mbps = 10
    deployment = build_metro(federate=federate,
                             handoff_latency_ms=HANDOFF_MS,
                             duration_s=DURATION_S, config=config)
    drive_scenario(deployment, DURATION_S)
    return deployment


def main() -> None:
    rows = []
    deployments = {}
    for federate in (False, True):
        dep = run(federate)
        deployments[federate] = dep
        summary = dep.recorder.summary(task_kind="recognition")
        rows.append([
            "federated" if federate else "isolated",
            str(summary.n), str(len(dep.handoff_log)),
            f"{dep.recorder.hit_ratio():.3f}",
            f"{summary.mean * 1e3:.0f}", f"{summary.p95 * 1e3:.0f}"])
    print(format_table(
        ["edges", "requests", "handoffs", "hit ratio", "mean ms", "p95 ms"],
        rows, title=f"4-edge metro, {HANDOFF_MS:.0f} ms handoffs, "
                    f"{DURATION_S:.0f} s"))

    dep = deployments[True]
    per_client = Counter({name: 0 for name in dep.client_names})
    per_client.update(h.client for h in dep.handoff_log)
    print(f"\nhandoffs per user: min {min(per_client.values())}, "
          f"max {max(per_client.values())}")
    if dep.handoff_log:
        first = dep.handoff_log[0]
        print(f"first handoff: {first.client} "
              f"{first.src_edge}->{first.dst_edge} "
              f"at t={first.started_s:.1f}s")
    peer_hits = sum(e.peer_hits for e in dep.edges)
    print(f"federated lookups answered by a neighbour edge: {peer_hits}")
    print("isolated edges re-fetch a roaming user's content from the cloud; "
          "federated edges let it follow the user over the metro link.")


if __name__ == "__main__":
    main()
