#!/usr/bin/env python3
"""Concert hall to transit hub: a handoff that ships — and *serves* —
DNN-layer state.

One edge serves the concert hall, another the transit hub next door.
With ``EdgePolicySpec(layer_reuse=True)`` the request pipeline runs the
partial-inference stage (paper §4, Potluck-style): every edge-side
extraction seeds the layer cache with the tap activations it computed
anyway, and a later capture whose cheap input sketch matches a cached
intermediate resumes inference mid-network instead of recomputing —
the ``partial`` outcome, served end to end through the real pipeline
(no hand-driven manager calls).

During the show the fans' captures fill the hall's result *and* layer
caches.  When the crowd pours out toward the hub, the pre-warm policy
(``prewarm_top_k`` results + ``prewarm_layers`` activations) pushes the
hall's hottest entries ahead of the handoff, paying real backhaul
bytes, so the hub's first drifted re-captures resume from a deep layer
immediately.

Expected output: a per-phase table showing the drifted re-captures at
the hub answered with the ``partial`` outcome at a fraction of the
hall-phase miss latency, the layers they resumed after, and the
pre-warm log line with the bytes the transfer paid.

Run:  python examples/concert_hall.py
"""

import os

from repro.core import CoICConfig
from repro.core.cluster import ClusterDeployment
from repro.core.metrics import OUTCOME_PARTIAL
from repro.core.scenario import (
    ClientSpec,
    EdgePolicySpec,
    EdgeSpec,
    InterEdgeLinkSpec,
    ScenarioSpec,
)
from repro.eval import format_table

DURATION_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "30"))
N_FANS = 4
#: Object classes visible on stage (what the hall's edge learns).
STAGE_SCENES = (3, 11, 19, 27)


def main() -> None:
    config = CoICConfig(seed=0)
    config.network.wifi_mbps = 100
    config.network.backhaul_mbps = 10
    spec = ScenarioSpec(
        edges=(EdgeSpec(name="hall",
                        clients=tuple(ClientSpec(name=f"fan{i}")
                                      for i in range(N_FANS))),
               EdgeSpec(name="hub")),
        inter_edge=(InterEdgeLinkSpec(a="hall", b="hub"),),
        policy=EdgePolicySpec(layer_reuse=True,
                              prewarm_top_k=8, prewarm_layers=6))
    dep = ClusterDeployment(spec, config=config)

    # Act 1 — the show: fans recognize the stage scenes through the
    # pipeline.  The first capture of each scene misses to the cloud;
    # its extraction seeds the hall's layer cache, so the re-captures
    # already come back as partial serves.
    for seq, scene in enumerate(STAGE_SCENES):
        for i, client in enumerate(dep.all_clients):
            dep.run_tasks(client, [dep.recognition_task(
                scene, viewpoint=0.2 * i, user=client.name, seq=seq)])
    n_hall = len(dep.recorder.records)

    # Act 2 — the crowd leaves: pre-warm the hub, hand everyone off,
    # then re-capture the stage scenes from wildly drifted viewpoints —
    # too far for the descriptor cache, close enough for mid layers.
    dep.prewarm("hall", "hub", client_name="fan0")
    for client in dep.all_clients:
        dep.env.process(dep.handoff(client, "hub"))
    dep.run_for(DURATION_S)
    for seq, scene in enumerate(STAGE_SCENES):
        for i, client in enumerate(dep.all_clients):
            dep.run_tasks(client, [dep.recognition_task(
                scene, viewpoint=4.0 + 0.5 * i, user=client.name,
                seq=100 + seq)])

    rows = []
    for phase, records in (("hall (show)", dep.recorder.records[:n_hall]),
                           ("hub (drifted)",
                            dep.recorder.records[n_hall:])):
        outcomes = [r.outcome for r in records]
        partials = [r for r in records if r.outcome == OUTCOME_PARTIAL]
        resumes = sorted({r.resume_layer for r in partials})
        mean_ms = sum(r.latency_s for r in records) / len(records) * 1e3
        rows.append([phase, str(len(records)),
                     str(outcomes.count("miss")),
                     str(outcomes.count("hit")), str(len(partials)),
                     ",".join(resumes) if resumes else "-",
                     f"{mean_ms:.0f}"])
    print(format_table(
        ["phase", "requests", "miss", "hit", "partial", "resumed after",
         "mean ms"],
        rows, title="mid-session resume through the request pipeline"))

    push = dep.prewarm_log[0]
    print(f"\npre-warm push {push.src_edge}->{push.dst_edge}: "
          f"{push.pushed} results + {push.layer_entries} layer activations, "
          f"{push.size_bytes / 1e6:.1f} MB over the metro link, "
          f"landed at t={push.time_s:.2f}s")
    hub = dep.edge_by_name["hub"]
    print(f"handoffs completed: {len(dep.handoff_log)}; hub served "
          f"{hub.partial_served} partials, saving "
          f"{hub.partial_saved_s:.1f}s of backbone compute")
    print("shipping layer activations costs real backhaul bytes, but the "
          "hub resumes mid-network instead of paying the full backbone.")


if __name__ == "__main__":
    main()
