#!/usr/bin/env python3
"""Concert hall to transit hub: a handoff that ships DNN-layer state.

One edge serves the concert hall, another the transit hub next door.
During the show the hall's edge accumulates two kinds of reusable IC
state: recognition *results* for the stage scenes, and — paper §4's
finer grain — cached *tap-layer activations* keyed by a cheap
perceptual sketch of the input, so a near-match can resume inference
mid-network instead of recomputing from the frame.  When the crowd
pours out toward the hub, the scenario's pre-warm policy
(``prewarm_top_k`` results + ``prewarm_layers`` activations) pushes the
hall's hottest entries to the hub ahead of the handoff, paying real
backhaul bytes for the multi-megabyte activation payloads.

Expected output: a table comparing the hub's layer-cache reuse plan for
a drifted (different-viewpoint) capture before vs after the pre-warm —
full recompute (~16 GFLOPs) before, resume at a deep layer after — plus
the pre-warm log line showing how many entries crossed and the bytes
the transfer paid.

Run:  python examples/concert_hall.py
"""

import os

from repro.core import CoICConfig
from repro.core.cluster import ClusterDeployment
from repro.core.layer_cache import input_sketch
from repro.core.scenario import (
    ClientSpec,
    EdgePolicySpec,
    EdgeSpec,
    InterEdgeLinkSpec,
    ScenarioSpec,
)
from repro.eval import format_table
from repro.vision.model_zoo import EDGE_CPU_2018

DURATION_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "30"))
N_FANS = 4
#: Object classes visible on stage (what the hall's edge learns).
STAGE_SCENES = (3, 11, 19, 27)


def main() -> None:
    config = CoICConfig(seed=0)
    config.network.wifi_mbps = 100
    config.network.backhaul_mbps = 10
    spec = ScenarioSpec(
        edges=(EdgeSpec(name="hall",
                        clients=tuple(ClientSpec(name=f"fan{i}")
                                      for i in range(N_FANS))),
               EdgeSpec(name="hub")),
        inter_edge=(InterEdgeLinkSpec(a="hall", b="hub"),),
        policy=EdgePolicySpec(prewarm_top_k=8, prewarm_layers=6))
    dep = ClusterDeployment(spec, config=config)

    # Act 1 — the show: fans recognize the stage scenes (fills the hall
    # edge's result cache) and the hall's layer manager caches the tap
    # activations of each scene under its cheap input sketch.
    hall = dep.layer_managers["hall"]
    tasks = [dep.recognition_task(scene, viewpoint=0.0, user=f"fan{i}",
                                  seq=k)
             for k, (i, scene) in enumerate(
                 (i, scene) for i in range(N_FANS)
                 for scene in STAGE_SCENES)]
    for i, client in enumerate(dep.all_clients):
        dep.run_tasks(client, tasks[i * len(STAGE_SCENES):
                                    (i + 1) * len(STAGE_SCENES)])
    for scene in STAGE_SCENES:
        sketch = input_sketch(dep.space.observe(scene, 0.0).vector)
        hall.insert(sketch, now=dep.env.now)

    # A fan's next capture at the hub: same scene, but caught from a
    # wildly different angle — too far for a whole-result reuse, close
    # enough for the shallow/middle layers.
    probe = input_sketch(
        dep.space.observe(STAGE_SCENES[0], 3.0, noise_key=99).vector)
    hub = dep.layer_managers["hub"]
    before = hub.plan(probe, now=dep.env.now)

    # Act 2 — the crowd leaves: pre-warm the hub, then hand everyone off.
    dep.prewarm("hall", "hub", client_name="fan0")
    for client in dep.all_clients:
        dep.env.process(dep.handoff(client, "hub"))
    dep.run_for(DURATION_S)
    after = hub.plan(probe, now=dep.env.now)

    full = hub.network.total_gflops
    rows = [
        ["before pre-warm", after_name(before), f"{before.compute_gflops:.1f}",
         f"{100 * (1 - before.compute_gflops / full):.0f}%",
         f"{hub.compute_time(before, EDGE_CPU_2018) * 1e3:.0f}"],
        ["after pre-warm", after_name(after), f"{after.compute_gflops:.1f}",
         f"{100 * (1 - after.compute_gflops / full):.0f}%",
         f"{hub.compute_time(after, EDGE_CPU_2018) * 1e3:.0f}"],
    ]
    print(format_table(
        ["hub layer cache", "resume after", "gflops left", "saved",
         "compute ms"],
        rows, title="drifted re-capture of a stage scene at the hub"))

    push = dep.prewarm_log[0]
    print(f"\npre-warm push {push.src_edge}->{push.dst_edge}: "
          f"{push.pushed} results + {push.layer_entries} layer activations, "
          f"{push.size_bytes / 1e6:.1f} MB over the metro link, "
          f"landed at t={push.time_s:.2f}s")
    print(f"handoffs completed: {len(dep.handoff_log)}; "
          f"hub cache now holds {len(dep.cache_by_name['hub'])} entries")
    print("shipping layer activations costs real backhaul bytes, but the "
          "hub resumes mid-network instead of paying the full backbone.")


def after_name(plan) -> str:
    return plan.resume_after if plan.resume_after is not None else "(nothing)"


if __name__ == "__main__":
    main()
