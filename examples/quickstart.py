#!/usr/bin/env python3
"""Quickstart: a three-node CoIC system in ~30 lines.

Builds the Figure 1 architecture (mobile -- edge -- cloud), runs one
recognition request as the Origin baseline, one through a cold CoIC cache
(miss) and one from a co-located second user (hit), and prints the
latency of each path.

Expected output: a three-row latency table (origin / miss / hit) where
the hit is several times faster than both cloud-bound paths, plus the
percentage reduction CoIC delivers over Origin.

Run:  python examples/quickstart.py
"""

from repro.core import CoICConfig, CoICDeployment
from repro.eval import format_table, reduction_pct


def main() -> None:
    # The paper's constrained condition: 90 Mbps WiFi, 9 Mbps backhaul.
    config = CoICConfig()
    config.network.wifi_mbps = 90
    config.network.backhaul_mbps = 9
    config.recognition.speculative_forward = True

    deployment = CoICDeployment(config, n_clients=2)

    # A stop sign (class 7) seen by two drivers from different angles.
    stop_sign = 7

    task = deployment.recognition_task(stop_sign, viewpoint=-0.3)
    origin = deployment.run_tasks(deployment.origin_clients[0], [task])[0]

    task = deployment.recognition_task(stop_sign, viewpoint=-0.3)
    miss = deployment.run_tasks(deployment.clients[0], [task])[0]

    task = deployment.recognition_task(stop_sign, viewpoint=+0.3)
    hit = deployment.run_tasks(deployment.clients[1], [task])[0]

    rows = [
        ["Origin (no cache)", f"{origin.latency_s * 1e3:.0f}", "-"],
        ["CoIC cache miss", f"{miss.latency_s * 1e3:.0f}",
         f"{reduction_pct(origin.latency_s, miss.latency_s):+.1f}%"],
        ["CoIC cache hit", f"{hit.latency_s * 1e3:.0f}",
         f"{reduction_pct(origin.latency_s, hit.latency_s):+.1f}%"],
    ]
    print(format_table(["path", "latency (ms)", "vs origin"], rows,
                       title="Recognition at (90, 9) Mbps"))
    print(f"\nedge cache: {deployment.cache}")
    print(f"hit returned correct label: {hit.correct}")


if __name__ == "__main__":
    main()
