#!/usr/bin/env python3
"""Rush hour at the stadium cell: what an overloaded edge should do.

Four edge sites cover a metro grid, but tonight the crowd is not
spread out: most users start in one cell and the waypoint gravity pulls
everyone toward the same two hotspots.  The hot edge's worker pool
saturates while its neighbours idle — the exact regime the request
pipeline's overload layer exists for.

The demo runs the same rush hour four times up the policy ladder:

* none             — queue everything (the paper's edge);
* shed             — admission control refuses work past the backlog
                     threshold;
* offload          — excess recognition work is forwarded to the
                     least-loaded neighbouring edge over the backhaul;
* offload+prewarm  — offload, plus each edge pushes its hottest cache
                     entries to the next edge ahead of every handoff.

Expected output: a policy-ladder table in which shed and the offload
policies cut p99 recognition latency well below the accept-everything
edge (offload also serving more requests), a per-edge breakdown showing
where the work landed, and the first pre-warm push of the run.

Run:  python examples/rush_hour.py
"""

import os

from repro.eval.experiments.overload_exp import (
    POLICY_NAMES,
    build_rush_hour,
    policy_spec,
)
from repro.eval.experiments.mobility_exp import drive_scenario
from repro.eval import format_table

DURATION_S = float(os.environ.get("REPRO_EXAMPLE_DURATION", "120"))
INTERVAL_S = 0.25
HOT_CLIENTS = 8


def run(policy_name: str):
    deployment = build_rush_hour(
        seed=0, policy=policy_spec(policy_name),
        hot_clients=HOT_CLIENTS, duration_s=DURATION_S)
    drive_scenario(deployment, DURATION_S, request_interval_s=INTERVAL_S)
    return deployment


def main() -> None:
    rows = []
    deployments = {}
    for name in POLICY_NAMES:
        dep = run(name)
        deployments[name] = dep
        recorder = dep.recorder
        records = recorder.select(task_kind="recognition")
        served = [r for r in records if r.outcome in ("hit", "miss")]
        shed = sum(1 for r in records if r.outcome == "shed")
        latencies = sorted(r.latency_s for r in served)
        p99 = latencies[int(0.99 * (len(latencies) - 1))] * 1e3
        offloaded = sum(e.offloaded_out for e in dep.edges)
        rows.append([name, str(len(served)), str(shed), str(offloaded),
                     str(dep.prewarm_pushed),
                     f"{recorder.hit_ratio('recognition'):.3f}",
                     f"{p99:.0f}"])
    print(format_table(
        ["policy", "served", "shed", "offloaded", "prewarmed",
         "hit ratio", "p99 ms"],
        rows, title=f"rush hour: {HOT_CLIENTS} users in one cell, "
                    f"{1 / INTERVAL_S:.0f} req/s each, {DURATION_S:.0f} s"))

    # Where did the work actually land?  The serving-edge tag on every
    # record answers that even for offloaded and post-handoff requests.
    print("\nper-edge share of served recognition requests:")
    for name in ("none", "offload+prewarm"):
        dep = deployments[name]
        served = [r for r in dep.recorder.select(task_kind="recognition")
                  if r.outcome in ("hit", "miss")]
        counts = {}
        for record in served:
            counts[record.edge] = counts.get(record.edge, 0) + 1
        share = ", ".join(f"{edge}={counts.get(edge, 0) / len(served):.2f}"
                          for edge in dep.edge_names)
        print(f"  {name:16s} {share}")

    dep = deployments["offload+prewarm"]
    if dep.prewarm_log:
        first = dep.prewarm_log[0]
        print(f"\nfirst pre-warm: {first.pushed} hot entries pushed "
              f"{first.src_edge}->{first.dst_edge} at t={first.time_s:.1f}s, "
              f"ahead of {first.client}'s handoff")
    print("an overloaded edge that sheds protects its own tail; one that "
          "borrows an idle neighbour protects the tail *and* the work.")


if __name__ == "__main__":
    main()
