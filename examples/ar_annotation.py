#!/usr/bin/env python3
"""The paper's demo app: AR annotations at a crossroads.

Section 3: "we implement an AR application upon CoIC, which renders
high-quality 3D annotations to label objects recognized in the camera
view."  Two safe-driving users approach the same crossroads; each must

1. recognize the stop sign / landmarks in view (DNN recognition), then
2. load the 3D annotation model for each recognized object (model load),

and the second driver rides the first driver's cached work for both
steps.  The script prints each user's pipeline with per-stage outcomes
and the end-to-end speedup.

Run:  python examples/ar_annotation.py
"""

from repro.core import CoICConfig, CoICDeployment
from repro.eval import format_table
from repro.workload import World
from repro.sim.rng import RngStreams


def drive_through(deployment, client, objects, annotation_for):
    """One driver's pass: recognize each object, then load its annotation."""
    stages = []
    for seq, (object_class, viewpoint) in enumerate(objects):
        task = deployment.recognition_task(object_class,
                                           viewpoint=viewpoint,
                                           user=client.name, seq=seq)
        record = deployment.run_tasks(client, [task])[0]
        stages.append(("recognize", object_class, record))

        load = deployment.model_load_task(annotation_for[object_class])
        record = deployment.run_tasks(client, [load])[0]
        stages.append(("load annotation", object_class, record))
        # Let the edge finish parsing so followers get loaded-form hits.
        deployment.env.run()
    return stages


def main() -> None:
    config = CoICConfig()
    config.network.wifi_mbps = 100
    config.network.backhaul_mbps = 10
    config.recognition.speculative_forward = True
    # Annotation models: one small & one detailed.
    config.rendering.catalog_sizes_kb = (512, 3072)
    deployment = CoICDeployment(config, n_clients=2)

    # The crossroads: a stop sign and a shop facade, both annotated.
    world = World(n_places=1, n_classes=config.recognition.n_classes,
                  objects_per_place=2,
                  rng=RngStreams(0).stream("crossroads"))
    sign, facade = world.place(0).object_classes
    annotation_for = {sign: 0, facade: 1}

    print("Driver A approaches the crossroads (cold edge cache)...")
    first = drive_through(deployment, deployment.clients[0],
                          [(sign, -0.4), (facade, -0.2)], annotation_for)
    print("Driver B approaches the same crossroads (warm cache)...")
    second = drive_through(deployment, deployment.clients[1],
                           [(sign, +0.4), (facade, +0.3)], annotation_for)

    rows = []
    for who, stages in (("A", first), ("B", second)):
        for stage, object_class, record in stages:
            rows.append([who, stage, object_class, record.outcome,
                         f"{record.latency_s * 1e3:.0f}"])
    print(format_table(
        ["driver", "stage", "object", "outcome", "ms"], rows,
        title="AR annotation pipeline"))

    total_a = sum(r.latency_s for _, _, r in first)
    total_b = sum(r.latency_s for _, _, r in second)
    print(f"\ndriver A end-to-end: {total_a * 1e3:.0f} ms (populates cache)")
    print(f"driver B end-to-end: {total_b * 1e3:.0f} ms "
          f"({100 * (1 - total_b / total_a):.0f}% faster via cooperation)")
    stats = deployment.cache.stats
    print(f"edge cache: {stats.hits} hits / {stats.lookups} lookups")


if __name__ == "__main__":
    main()
