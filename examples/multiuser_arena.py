#!/usr/bin/env python3
"""Pokemon-style shared arena: cooperative 3D model loading.

Section 1.2: "two Pokemon Go players require rendering the same 3D avatar
when they are interacting through Pokemon application in the same place."
Eight players join an arena over a few minutes.  Every player must load
the shared scene (arena props + popular avatars); each also loads a
personal skin nobody else uses.  The script streams the joins through a
CoIC deployment and reports, per player, how much of their load burst the
edge had already done for them — and what the frame rate looks like once
everything is resident, using real procedural meshes.

Run:  python examples/multiuser_arena.py
"""

import numpy as np

from repro.core import CoICConfig, CoICDeployment
from repro.eval import format_table
from repro.render import Renderer, generate_mesh
from repro.render.renderer import MOBILE_RENDER_2018
from repro.sim.rng import RngStreams
from repro.vision.image import RESOLUTIONS
from repro.workload import ArenaTraceGenerator

N_PLAYERS = 8
N_SHARED = 6      # arena props + popular avatars
N_PERSONAL = 2    # per-player skins


def main() -> None:
    rng = RngStreams(7)

    # Catalog: shared models first, then each player's personal ones.
    shared_sizes = [int(s) for s in
                    rng.stream("sizes").uniform(800, 4000, N_SHARED)]
    personal_sizes = [int(s) for s in
                     rng.stream("sizes").uniform(300, 900,
                                                 N_PLAYERS * N_PERSONAL)]
    config = CoICConfig()
    config.network.wifi_mbps = 200
    config.network.backhaul_mbps = 20
    config.rendering.catalog_sizes_kb = tuple(shared_sizes + personal_sizes)
    deployment = CoICDeployment(config, n_clients=N_PLAYERS)

    generator = ArenaTraceGenerator(
        n_shared_models=N_SHARED, n_personal_models=N_PERSONAL,
        rng=rng.stream("arena"), mean_interarrival_s=15.0,
        load_spacing_s=1.0)
    names = [c.name for c in deployment.clients]
    trace = generator.generate(N_PLAYERS, user_names=names)

    clients = {c.name: c for c in deployment.clients}
    plan = [(req.time_s, clients[req.user],
             deployment.model_load_task(req.model_id)) for req in trace]
    deployment.run_concurrent(plan)
    deployment.env.run()  # drain background parses

    rows = []
    for name in names:
        records = deployment.recorder.select(task_kind="model_load",
                                             user=name)
        hits = sum(1 for r in records if r.outcome == "hit")
        total_ms = sum(r.latency_s for r in records) * 1e3
        rows.append([name, len(records), hits,
                     f"{total_ms:.0f}"])
    print(format_table(["player", "loads", "cache hits", "total load ms"],
                       rows, title="Arena join bursts (in join order)"))
    print(f"\noverall hit ratio: "
          f"{deployment.recorder.hit_ratio('model_load'):.2f} "
          f"(shared scene = {N_SHARED}/{N_SHARED + N_PERSONAL} of each burst)")

    # Once resident, what does drawing the arena cost?  Use real meshes.
    meshes = [generate_mesh(model_id, kb, seed=7)
              for model_id, kb in enumerate(shared_sizes)]
    renderer = Renderer(MOBILE_RENDER_2018)
    pixels = RESOLUTIONS["1440p"].pixels
    fps = renderer.fps(meshes, pixels)
    triangles = sum(m.n_triangles for m in meshes)
    print(f"steady-state draw: {triangles} triangles at 1440p -> "
          f"{fps:.0f} fps on a 2018 mobile GPU")


if __name__ == "__main__":
    main()
