#!/usr/bin/env python3
"""Cloud VR streaming: panorama reuse across co-watching viewers.

Section 1.2's third insight: cloud VR sends panoramic frames that the
client crops to its viewport (FlashBack / Furion style), and "multiple
users playing the same VR applications or watching the same VR video
might use the same panorama."  Six viewers join a live 360 stream within
seconds of each other.  The script compares CoIC against per-viewer
Origin streaming, then shows what finer pose grids (position-tracked
content) do to the sharing.

Run:  python examples/vr_streaming.py
"""

from repro.core import CoICConfig, CoICDeployment
from repro.eval import format_table
from repro.render.panorama import PanoramaGrid
from repro.sim.rng import RngStreams
from repro.workload import VrTraceGenerator

N_VIEWERS = 6
SEGMENTS = 15


def run_session(grid: PanoramaGrid, origin: bool = False):
    """One viewing session; returns (mean ms, hit ratio, backhaul MB)."""
    config = CoICConfig()
    config.vr.yaw_cells = grid.yaw_cells
    config.vr.pitch_cells = grid.pitch_cells
    deployment = CoICDeployment(config, n_clients=N_VIEWERS)

    generator = VrTraceGenerator(
        n_contents=1, rng=RngStreams(3).stream("vr"), segment_rate_hz=1.0,
        grid=grid, mean_join_gap_s=1.5, session_segments=SEGMENTS)
    names = [c.name for c in deployment.clients]
    trace = generator.generate(N_VIEWERS, user_names=names)

    pool = (deployment.origin_clients if origin else deployment.clients)
    by_name = {c.name: c for c in pool}
    plan = [(req.time_s, by_name[req.user],
             deployment.panorama_task(req.content_id, req.segment,
                                      req.pose_cell)) for req in trace]
    deployment.run_concurrent(plan)

    mean_ms = deployment.recorder.summary(task_kind="panorama").mean * 1e3
    hit_ratio = deployment.recorder.hit_ratio("panorama")
    backhaul_mb = deployment.backhaul_down.stats.bytes_sent / 1e6
    return mean_ms, hit_ratio, backhaul_mb


def main() -> None:
    full_sphere = PanoramaGrid(yaw_cells=1, pitch_cells=1)

    origin_ms, _, origin_mb = run_session(full_sphere, origin=True)
    coic_ms, hit_ratio, coic_mb = run_session(full_sphere)
    rows = [
        ["Origin (per-viewer cloud)", f"{origin_ms:.0f}", "-",
         f"{origin_mb:.0f}"],
        ["CoIC edge cache", f"{coic_ms:.0f}", f"{hit_ratio:.2f}",
         f"{coic_mb:.0f}"],
    ]
    print(format_table(
        ["delivery", "mean latency (ms)", "hit ratio", "backhaul MB"],
        rows, title=f"{N_VIEWERS} viewers x {SEGMENTS} segments, 4K panoramas"))
    print(f"\nlatency reduction: {100 * (1 - coic_ms / origin_ms):.0f}%  "
          f"backhaul saving: {100 * (1 - coic_mb / origin_mb):.0f}%")

    # Position-tracked content fragments the panorama space.
    print("\npose-grid sensitivity (finer grids = less sharing):")
    rows = []
    for yaw_cells in (1, 4, 8):
        grid = PanoramaGrid(yaw_cells=yaw_cells, pitch_cells=1)
        mean_ms, hit, mb = run_session(grid)
        rows.append([f"{yaw_cells}x1", f"{hit:.2f}", f"{mean_ms:.0f}",
                     f"{mb:.0f}"])
    print(format_table(["grid", "hit ratio", "mean ms", "backhaul MB"],
                       rows))


if __name__ == "__main__":
    main()
