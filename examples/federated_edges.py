#!/usr/bin/env python3
"""Two cafes, one street: cooperation *between* edges.

The single-edge CoIC shares results among users behind one access point.
This example federates two edges over a metro link: players in cafe A
warm their edge with the arena's shared avatars; when players in cafe B
join the same arena, their edge fetches the loaded models from its
neighbour in milliseconds instead of re-downloading through the cloud
backhaul.

Expected output: per-model load latencies for both cafes — cafe B's
federated fetches land between cafe A's cloud misses and its local
hits — and the edge-level peer-hit counters proving the models came
over the metro link, not the WAN.

Run:  python examples/federated_edges.py
"""

from repro.core import CoICConfig
from repro.core.federation import FederatedDeployment
from repro.eval import format_table

N_MODELS = 4


def play_session(deployment, client, label):
    """One player loads the arena's shared models; returns records."""
    records = []
    for model_id in range(N_MODELS):
        record = deployment.run_tasks(
            client, [deployment.model_load_task(model_id)])[0]
        records.append(record)
        deployment.env.run()  # let edge parses / inserts settle
    total_ms = sum(r.latency_s for r in records) * 1e3
    hits = sum(1 for r in records if r.outcome == "hit")
    return total_ms, hits


def run(federate: bool):
    config = CoICConfig()
    config.network.wifi_mbps = 100
    config.network.backhaul_mbps = 10
    config.rendering.catalog_sizes_kb = (1500, 2800, 4200, 6100)
    deployment = FederatedDeployment(
        config, n_edges=2, clients_per_edge=1, metro_mbps=1000,
        metro_delay_ms=2.0, federate=federate)

    cafe_a_ms, _ = play_session(deployment, deployment.clients[0][0],
                                "cafe A")
    cafe_b_ms, cafe_b_hits = play_session(deployment,
                                          deployment.clients[1][0],
                                          "cafe B")
    return cafe_a_ms, cafe_b_ms, cafe_b_hits, deployment


def main() -> None:
    iso_a, iso_b, iso_hits, _ = run(federate=False)
    fed_a, fed_b, fed_hits, dep = run(federate=True)

    rows = [
        ["isolated", f"{iso_a:.0f}", f"{iso_b:.0f}", f"{iso_hits}/{N_MODELS}"],
        ["federated", f"{fed_a:.0f}", f"{fed_b:.0f}",
         f"{fed_hits}/{N_MODELS}"],
    ]
    print(format_table(
        ["edges", "cafe A load ms", "cafe B load ms", "cafe B hits"],
        rows, title="Arena join: cafe A first, cafe B second"))
    print(f"\ncafe B speedup from federation: "
          f"{iso_b / fed_b:.1f}x  "
          f"(edge1 answered {dep.edges[1].peer_hits} loads from edge0)")
    print("cloud fetches: isolated would fetch every model per edge; "
          "federated fetched each model exactly once.")


if __name__ == "__main__":
    main()
